"""Robustness fuzzing: hostile bytes must never crash the tooling, and
every single-byte change to a *hashed* region must be detected.

Four property families:

* **parser total-ness** — PEImage over arbitrarily mutated images either
  parses or raises PEFormatError; no IndexError/struct.error escapes.
  An introspection tool parses attacker-controlled memory, so this is a
  security property, not a nicety.
* **detection completeness** — for any offset inside any hashed region,
  flipping one bit on one VM flags exactly that VM (4-VM pool).
* **walk total-ness** — a guest that controls its own
  ``PsLoadedModuleList`` bytes (loops, NULL links, bogus lengths and
  sizes) gets a module list or a clean ``IntrospectionFault``, never a
  hang, an over-copy, or a foreign exception.
* **chaos soak** (``-m chaos``) — under sustained lifecycle churn a
  clean pool raises zero integrity alerts, the run is a pure function
  of the seed, and an infected guest admitted mid-run is still caught.
"""

import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud import build_testbed, stage_chaos
from repro.core import IntegrityChecker, ModuleParser, ModuleSearcher
from repro.core.searcher import MAX_LIST_WALK, ModuleCopy
from repro.errors import IntrospectionFault, PEFormatError, ReproError
from repro.guest.ldr import (LDR_ENTRY_SIZE, OFF_BASEDLLNAME,
                             OFF_SIZEOFIMAGE)
from repro.hypervisor import Hypervisor
from repro.pe import PEImage, map_file_to_memory
from repro.vmi import OSProfile, VMIInstance

#: Alert kinds that convict a VM (vs. availability noise).
INTEGRITY_KINDS = ("integrity", "hidden-module", "decoy-entry")


@pytest.fixture(scope="module")
def base_image(catalog):
    return bytes(map_file_to_memory(catalog["dummy.sys"].file_bytes))


class TestParserTotalness:
    @given(mutations=st.lists(
        st.tuples(st.integers(min_value=0, max_value=24575),
                  st.integers(min_value=0, max_value=255)),
        min_size=1, max_size=16))
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_mutated_image_parses_or_peformaterror(self, base_image,
                                                   mutations):
        buf = bytearray(base_image)
        for off, value in mutations:
            buf[off % len(buf)] = value
        try:
            PEImage(bytes(buf))
        except PEFormatError:
            pass                      # rejected cleanly: acceptable

    @given(data=st.binary(min_size=0, max_size=512))
    @settings(max_examples=80, deadline=None)
    def test_random_bytes_never_crash(self, data):
        with pytest.raises(PEFormatError):
            PEImage(data + b"\x00" * 64)   # random junk is never a valid PE

    @given(size=st.integers(min_value=0, max_value=63))
    @settings(max_examples=20, deadline=None)
    def test_truncations_rejected(self, base_image, size):
        with pytest.raises(PEFormatError):
            PEImage(base_image[:size])


class TestDetectionCompleteness:
    """Any bit flip inside a hashed region must convict the VM."""

    @pytest.fixture(scope="class")
    def pool(self):
        tb = build_testbed(4, seed=42)
        from repro.core import ModChecker
        mc = ModChecker(tb.hypervisor, tb.profile)
        parsed, *_ = mc.fetch_modules("dummy.sys", tb.vm_names)
        return parsed

    @given(region_pick=st.integers(min_value=0, max_value=10_000),
           offset_pick=st.integers(min_value=0, max_value=100_000),
           bit=st.integers(min_value=0, max_value=7))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_single_bit_flip_always_detected(self, pool, region_pick,
                                             offset_pick, bit):
        target, *others = pool
        regions = target.all_regions()
        region = regions[region_pick % len(regions)]
        offset = region.start + (offset_pick % region.size)

        image = bytearray(target.image)
        image[offset] ^= 1 << bit
        try:
            tampered = ModuleParser().parse(ModuleCopy(
                target.vm_name, target.module_name, target.base,
                bytes(image), 0))
        except PEFormatError:
            # Structural corruption (broken magic/e_lfanew/section
            # bounds) aborts parsing — itself an unmissable alarm.
            return

        checker = IntegrityChecker()
        report = checker.check_target(tampered, others)
        assert not report.clean
        assert region.name in report.mismatched_regions()

    def test_flip_outside_hashed_regions_not_detected(self, pool):
        """Converse control: a flip in .data (unhashed) stays silent —
        the checker's scope is exactly the hashed regions."""
        target, *others = pool
        pe = PEImage(target.image)
        data_sec = pe.section(".data")
        image = bytearray(target.image)
        image[data_sec.virtual_address + 8] ^= 0xFF
        tampered = ModuleParser().parse(ModuleCopy(
            target.vm_name, target.module_name, target.base,
            bytes(image), 0))
        report = IntegrityChecker().check_target(tampered, others)
        assert report.clean


class TestCheckerErrorContainment:
    def test_garbage_copy_raises_repro_error_only(self):
        copy = ModuleCopy("VmX", "junk.sys", 0xF7000000,
                          b"\xDE\xAD" * 4096, 0)
        with pytest.raises(ReproError):
            ModuleParser().parse(copy)


def _hostile_guest(catalog, seed=101):
    hv = Hypervisor()
    hv.create_guest("Evil", catalog, seed=seed)
    kernel = hv.domain("Evil").kernel
    profile = OSProfile.from_guest(kernel)
    return kernel, ModuleSearcher(VMIInstance(hv, "Evil", profile))


class TestHostileLdrWalk:
    """The guest owns every byte the walk dereferences; the searcher
    may only ever answer with a list or an ``IntrospectionFault``."""

    def test_self_loop_flink_bounded(self, catalog):
        kernel, searcher = _hostile_guest(catalog)
        node = kernel.module("hal.dll").ldr_entry_va
        kernel.aspace.write(node, struct.pack("<I", node))
        with pytest.raises(IntrospectionFault, match="bound"):
            searcher.list_modules()

    def test_cycle_skipping_head_bounded(self, catalog):
        # Last node links back to the first node instead of the head:
        # a cycle the `cursor != head` exit can never leave.
        kernel, searcher = _hostile_guest(catalog)
        head = kernel.symbols["PsLoadedModuleList"]
        first = struct.unpack("<I", kernel.aspace.read(head, 4))[0]
        last = struct.unpack("<I", kernel.aspace.read(head + 4, 4))[0]
        kernel.aspace.write(last, struct.pack("<I", first))
        with pytest.raises(IntrospectionFault, match="bound"):
            searcher.list_modules()

    def test_null_flink_clean_fault(self, catalog):
        kernel, searcher = _hostile_guest(catalog)
        node = kernel.module("dummy.sys").ldr_entry_va
        kernel.aspace.write(node, struct.pack("<I", 0))
        with pytest.raises(IntrospectionFault, match="NULL"):
            searcher.list_modules()

    def test_bogus_unicode_length_skips_node(self, catalog):
        # UNICODE_STRING.Length beyond the 512-byte sanity cap: the
        # node is dropped, the rest of the walk survives.
        kernel, searcher = _hostile_guest(catalog)
        node = kernel.module("disk.sys").ldr_entry_va
        kernel.aspace.write(node + OFF_BASEDLLNAME,
                            struct.pack("<H", 0xFEFE))
        names = [e.name for e in searcher.list_modules()]
        assert "disk.sys" not in names
        assert "hal.dll" in names

    def test_hostile_sizeofimage_bounded_page_reads(self, catalog):
        # A 48 MiB claim passes the plausibility cap but is not backed;
        # the chunked copy must fault long before reading 48 MiB.
        kernel, searcher = _hostile_guest(catalog)
        claimed = 48 * 1024 * 1024
        node = kernel.module("hal.dll").ldr_entry_va
        kernel.aspace.write(node + OFF_SIZEOFIMAGE,
                            struct.pack("<I", claimed))
        with pytest.raises(IntrospectionFault, match="not backed"):
            searcher.copy_module("hal.dll")
        assert searcher.vmi.stats.pages_mapped < claimed // 4096

    @given(module_pick=st.integers(min_value=0, max_value=10_000),
           offset=st.integers(min_value=0, max_value=LDR_ENTRY_SIZE - 1),
           payload=st.binary(min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_arbitrary_ldr_corruption_contained(self, catalog, module_pick,
                                                offset, payload):
        kernel, searcher = _hostile_guest(catalog)
        names = list(kernel.modules)
        node = kernel.module(names[module_pick % len(names)]).ldr_entry_va
        kernel.aspace.write(node + offset,
                            payload[:LDR_ENTRY_SIZE - offset])
        try:
            entries = searcher.list_modules()
        except IntrospectionFault:
            return                     # clean, typed failure: acceptable
        assert len(entries) <= MAX_LIST_WALK


@pytest.mark.chaos
class TestChaosSoak:
    """Lifecycle churn (reboot/pause/migrate/destroy/create) is noise,
    not signal: no false positives, full determinism, and an infected
    guest admitted mid-run is still convicted."""

    CYCLES = 12
    CHURN = 0.25
    DETECT_WITHIN = 4

    def test_clean_pool_zero_false_positives(self):
        scenario = stage_chaos(n_vms=5, seed=42, churn_rate=self.CHURN)
        log = scenario.run(self.CYCLES)
        integrity = [a for a in log.alerts if a.kind in INTEGRITY_KINDS]
        assert integrity == []
        assert scenario.engine.stats.steps == self.CYCLES
        # Churn actually happened — the soak exercised the machinery.
        assert any(scenario.engine.stats.as_dict()[k]
                   for k in ("reboots", "pauses", "migrations",
                             "destroys", "creates"))

    def test_same_seed_identical_alert_log_and_trace(self):
        def one_run():
            scenario = stage_chaos(n_vms=5, seed=7, churn_rate=self.CHURN)
            log = scenario.run(self.CYCLES)
            return ([str(a) for a in log.alerts],
                    [str(e) for e in scenario.engine.trace],
                    sorted(scenario.checker.pool_vm_names()))

        assert one_run() == one_run()

    def test_different_seed_differs(self):
        runs = []
        for seed in (7, 8):
            scenario = stage_chaos(n_vms=5, seed=seed, churn_rate=self.CHURN)
            scenario.run(self.CYCLES)
            runs.append([str(e) for e in scenario.engine.trace])
        assert runs[0] != runs[1]

    def test_infected_admission_mid_run_detected(self):
        scenario = stage_chaos(n_vms=5, seed=42, churn_rate=self.CHURN)
        scenario.run(4)
        vm = scenario.admit_infected("E2")
        before = len(scenario.daemon.log)
        scenario.run(self.DETECT_WITHIN)
        hits = [a for a in scenario.daemon.log.alerts[before:]
                if a.kind in INTEGRITY_KINDS and vm in a.flagged_vms]
        assert hits, f"{vm} never convicted under churn"
