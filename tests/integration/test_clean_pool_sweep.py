"""Whole-catalog sweeps over a clean pool: zero false positives.

The quiet half of the paper's claim — "minimal or no impact ... able to
detect any change" — requires that *unchanged* modules never alarm,
despite every VM holding them at different bases. This is the hardest
property for the RVA machinery, so it gets a dedicated sweep plus a
seed-randomised property test.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ModChecker
from repro.guest import build_catalog, GuestKernel
from repro.core.parser import ModuleParser
from repro.core.searcher import ModuleCopy
from repro.core.integrity import IntegrityChecker


class TestCleanSweep:
    def test_every_module_every_vm_clean(self, clean_testbed_session):
        tb = clean_testbed_session
        mc = ModChecker(tb.hypervisor, tb.profile)
        outcomes = mc.check_all_modules()
        assert set(outcomes) == set(tb.catalog)
        for name, outcome in outcomes.items():
            assert outcome.report.all_clean, name
            for pair in outcome.report.pairs:
                assert pair.matched, (name, pair.vm_a, pair.vm_b)

    def test_rva_stats_fully_resolved_everywhere(self, clean_testbed_session):
        tb = clean_testbed_session
        mc = ModChecker(tb.hypervisor, tb.profile)
        out = mc.check_pool("ntoskrnl.exe")
        for pair in out.report.pairs:
            for region, stats in pair.rva_stats.items():
                assert stats.unresolved == 0, (pair.vm_a, pair.vm_b, region)

    @pytest.mark.parametrize("mode", ["faithful", "robust", "vectorized"])
    def test_no_false_positives_any_mode(self, clean_testbed_session, mode):
        tb = clean_testbed_session
        mc = ModChecker(tb.hypervisor, tb.profile, rva_mode=mode)
        for module in ("hal.dll", "http.sys", "win32k.sys"):
            assert mc.check_pool(module).report.all_clean, (mode, module)


class TestSeedRandomisedProperty:
    @given(catalog_seed=st.integers(min_value=0, max_value=10_000),
           vm_seeds=st.tuples(st.integers(0, 10_000),
                              st.integers(0, 10_000)))
    @settings(max_examples=10, deadline=None)
    def test_random_clone_pairs_always_match(self, catalog_seed, vm_seeds):
        """For arbitrary catalog and VM seeds, two clean clones of
        dummy.sys always compare equal after RVA adjustment."""
        catalog = build_catalog(seed=catalog_seed)
        parsed = []
        for i, seed in enumerate(vm_seeds):
            kernel = GuestKernel(f"vm{i}", seed=seed)
            kernel.boot(catalog)
            mod = kernel.module("dummy.sys")
            copy = ModuleCopy(f"vm{i}", "dummy.sys", mod.base,
                              kernel.read_module_image("dummy.sys"),
                              mod.ldr_entry_va)
            parsed.append(ModuleParser().parse(copy))
        result = IntegrityChecker().compare_pair(*parsed)
        assert result.matched, result.mismatched_regions
