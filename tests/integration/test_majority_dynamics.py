"""Majority-vote dynamics as an infection spreads (§III-B discussion).

The paper notes a fast worm could infect most VMs and invert the vote
(clean machines get flagged) — but "in either of the above cases,
ModChecker is capable of detecting discrepancies among VMs". These
tests chart that whole spectrum.
"""

import pytest

from repro.attacks import attack_for_experiment
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.guest import build_catalog

POOL = 7


def _spread(n_infected, exp_id="E1"):
    attack, module = attack_for_experiment(exp_id)
    catalog = build_catalog(seed=42)
    infected_bp = attack.apply(catalog[module]).infected
    victims = [f"Dom{i}" for i in range(1, n_infected + 1)]
    tb = build_testbed(POOL, seed=42,
                       infected={v: {module: infected_bp} for v in victims})
    mc = ModChecker(tb.hypervisor, tb.profile)
    return victims, mc.check_pool(module).report


class TestSpread:
    def test_minority_infections_flagged_exactly(self):
        """Exact localisation holds while the clean cluster keeps a
        strict majority of each clean VM's t-1 comparisons: with t=7
        that means up to 2 identical infections (clean VMs then match
        4 > 3 others)."""
        for k in (1, 2):
            victims, report = _spread(k)
            assert set(report.flagged()) == set(victims), k

    def test_three_of_seven_loses_strict_majority(self):
        """k=3 of 7: clean VMs match only 3 of 6 — exactly half — so the
        strict rule flags the whole pool; the discrepancy alarm still
        fires and the victims are identifiable by fewer matches."""
        victims, report = _spread(3)
        assert set(report.flagged()) == {f"Dom{i}" for i in range(1, POOL + 1)}
        for v in victims:
            assert report.verdicts[v].matches == 2
        for i in range(4, POOL + 1):
            assert report.verdicts[f"Dom{i}"].matches == 3

    def test_majority_infection_inverts_vote(self):
        """5 of 7 infected: the two clean VMs lose the vote (the paper's
        SQL-Slammer false-alarm case) — discrepancy still detected."""
        victims, report = _spread(5)
        flagged = set(report.flagged())
        assert flagged == {"Dom6", "Dom7"}
        assert not report.all_clean

    def test_total_infection_is_the_blind_spot(self):
        """All VMs identically infected: every pair matches, nothing is
        flagged. The paper's requirement — 'at least one virtual machine
        runs the original module' — is genuinely necessary."""
        victims, report = _spread(POOL)
        assert report.all_clean

    def test_even_split_everyone_flagged(self):
        """With 3 of 6 infected, no copy matches a strict majority of
        the other five — ModChecker raises alarms across the board,
        which operationally means 'investigate the pool'."""
        attack, module = attack_for_experiment("E1")
        catalog = build_catalog(seed=42)
        infected_bp = attack.apply(catalog[module]).infected
        victims = ["Dom1", "Dom2", "Dom3"]
        tb = build_testbed(6, seed=42,
                           infected={v: {module: infected_bp}
                                     for v in victims})
        mc = ModChecker(tb.hypervisor, tb.profile)
        report = mc.check_pool(module).report
        assert set(report.flagged()) == {f"Dom{i}" for i in range(1, 7)}

    def test_two_distinct_infections(self):
        """Two different rootkits on two VMs: both flagged, each with
        its own signature."""
        a1, module = attack_for_experiment("E1")
        a2, _ = attack_for_experiment("E2")
        catalog = build_catalog(seed=42)
        tb = build_testbed(POOL, seed=42, infected={
            "Dom1": {module: a1.apply(catalog[module]).infected},
            "Dom2": {module: a2.apply(catalog[module]).infected},
        })
        mc = ModChecker(tb.hypervisor, tb.profile)
        report = mc.check_pool(module).report
        assert set(report.flagged()) == {"Dom1", "Dom2"}
        # and the infected pair also mismatch each other
        assert not report.pair("Dom1", "Dom2").matched


class TestVoteArithmetic:
    @pytest.mark.parametrize("t,infected,expect_victims_flagged", [
        (3, 1, True), (5, 1, True), (5, 2, True), (7, 3, True),
    ])
    def test_threshold(self, t, infected, expect_victims_flagged):
        attack, module = attack_for_experiment("E3")
        catalog = build_catalog(seed=42)
        infected_bp = attack.apply(catalog[module]).infected
        victims = [f"Dom{i}" for i in range(1, infected + 1)]
        tb = build_testbed(t, seed=42,
                           infected={v: {module: infected_bp}
                                     for v in victims})
        mc = ModChecker(tb.hypervisor, tb.profile)
        report = mc.check_pool(module).report
        assert (set(report.flagged()) >= set(victims)) == \
            expect_victims_flagged
