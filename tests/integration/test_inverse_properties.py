"""Inverse/idempotence properties across the load–check pipeline.

These tie the substrate layers together with the algebra the checker
relies on: relocation is invertible, loading is deterministic given a
seed, RVA adjustment is idempotent, and a full check leaves the guests
byte-identical (read-only introspection, verified from outside).
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import build_testbed
from repro.core import ModChecker, adjust_rva_robust
from repro.guest import GuestKernel
from repro.pe import (PEImage, build_driver, map_file_to_memory)
from repro.pe.constants import DIR_BASERELOC
from repro.pe.relocations import apply_relocations, parse_reloc_section


class TestRelocationInverse:
    @given(seed=st.integers(min_value=0, max_value=500),
           delta_pages=st.integers(min_value=-0x400, max_value=0x400))
    @settings(max_examples=25, deadline=None)
    def test_relocate_then_revert_is_identity(self, seed, delta_pages):
        bp = build_driver(f"inv{seed}.sys", seed=seed, n_functions=4,
                          imports=())
        image = map_file_to_memory(bp.file_bytes)
        pristine = bytes(image)
        pe = PEImage(pristine)
        d = pe.optional_header.data_directories[DIR_BASERELOC]
        fixups = parse_reloc_section(pristine[d.virtual_address:
                                              d.virtual_address + d.size])
        delta = delta_pages << 12
        apply_relocations(image, fixups, delta)
        if delta:
            assert bytes(image) != pristine
        apply_relocations(image, fixups, -delta)
        assert bytes(image) == pristine


class TestLoadDeterminism:
    def test_same_seed_same_guest_bytes(self, catalog):
        digests = []
        for _ in range(2):
            kernel = GuestKernel("det", seed=123)
            kernel.boot(catalog)
            h = hashlib.sha256()
            for name in sorted(kernel.modules):
                h.update(kernel.read_module_image(name))
            digests.append(h.hexdigest())
        assert digests[0] == digests[1]

    def test_check_results_deterministic(self):
        flags = []
        for _ in range(2):
            from repro.cloud import stage_experiment
            sc = stage_experiment("E4", n_vms=5)
            report = sc.run_pool_check().report
            flags.append((tuple(report.flagged()),
                          report.mismatched_regions("Dom3")))
        assert flags[0] == flags[1]


class TestAdjustIdempotence:
    def test_double_adjust_is_stable(self, clean_testbed_session):
        tb = clean_testbed_session
        mc = ModChecker(tb.hypervisor, tb.profile)
        (a, b), *_ = mc.fetch_modules("dummy.sys", tb.vm_names[:2])
        ta = a.region_bytes(a.code_regions[0])
        tb_ = b.region_bytes(b.code_regions[0])
        adj_a, adj_b, first = adjust_rva_robust(ta, a.base, tb_, b.base)
        again_a, again_b, second = adjust_rva_robust(adj_a, a.base,
                                                     adj_b, b.base)
        # once canonical, there is nothing left to adjust
        assert (again_a, again_b) == (adj_a, adj_b)
        assert second.replaced == 0 and second.windows == 0


class TestReadOnlyIntrospection:
    def test_full_pool_check_leaves_guests_untouched(self):
        tb = build_testbed(4, seed=42)

        def cloud_digest() -> str:
            h = hashlib.sha256()
            for vm in tb.vm_names:
                memory = tb.hypervisor.domain(vm).kernel.memory
                for frame_no in sorted(memory._frames):
                    h.update(memory.read_frame(frame_no))
            return h.hexdigest()

        before = cloud_digest()
        mc = ModChecker(tb.hypervisor, tb.profile)
        mc.check_all_modules()
        mc.detect_hidden_modules("Dom2")
        assert cloud_digest() == before

    def test_dump_acquisition_leaves_guests_untouched(self):
        from repro.vmi import acquire_dump
        tb = build_testbed(2, seed=42)
        kernel = tb.hypervisor.domain("Dom1").kernel
        before = kernel.read_module_image("hal.dll")
        acquire_dump(tb.hypervisor, "Dom1", tb.profile)
        assert kernel.read_module_image("hal.dll") == before
