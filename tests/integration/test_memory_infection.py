"""In-memory infection + snapshot revert — beyond the paper's file-based
procedure but squarely within its claims: ModChecker checks *in-memory*
modules, and §III-B suggests reverting flagged VMs to clean snapshots.
"""

import pytest

from repro.cloud import build_testbed
from repro.core import ModChecker, ModuleSearcher


@pytest.fixture
def tb():
    return build_testbed(4, seed=42)


def _patch_text_in_memory(tb, vm, module="hal.dll"):
    """Runtime patch (no file involved): flip a byte in .text."""
    kernel = tb.hypervisor.domain(vm).kernel
    mod = kernel.module(module)
    bp = tb.catalog[module]
    text = bp.section(".text")
    va = mod.base + text.virtual_address + 0x20
    original = kernel.aspace.read(va, 1)
    kernel.aspace.write(va, bytes([original[0] ^ 0x01]))


class TestRuntimePatching:
    def test_memory_only_infection_detected(self, tb):
        mc = ModChecker(tb.hypervisor, tb.profile)
        assert mc.check_pool("hal.dll").report.all_clean
        _patch_text_in_memory(tb, "Dom2")
        report = mc.check_pool("hal.dll").report
        assert report.flagged() == ["Dom2"]
        assert report.mismatched_regions("Dom2") == (".text",)

    def test_disk_file_would_pass_a_disk_checker(self, tb):
        """Why cross-VM beats SVV-style disk comparison for runtime
        patches: the on-disk file is still pristine."""
        _patch_text_in_memory(tb, "Dom2")
        kernel = tb.hypervisor.domain("Dom2").kernel
        in_memory = kernel.read_module_image("hal.dll")
        from repro.pe import map_file_to_memory
        on_disk = bytes(map_file_to_memory(
            tb.catalog["hal.dll"].file_bytes))
        # Disk image (rebased) wouldn't show the infection byte pattern
        # at file level; memory and disk now genuinely diverge.
        assert in_memory != on_disk

    def test_ldr_tamper_hides_module_but_pool_continues(self, tb):
        """DKOM hiding on one VM: the hidden module simply drops out of
        that VM's comparisons; the rest of the pool still cross-checks."""
        tb.hypervisor.domain("Dom2").kernel.unload_module("dummy.sys")
        mc = ModChecker(tb.hypervisor, tb.profile)
        out = mc.check_pool("dummy.sys")
        assert set(out.report.vm_names) == {"Dom1", "Dom3", "Dom4"}
        assert out.report.all_clean


class TestSnapshotWorkflow:
    def test_flag_revert_recheck(self, tb):
        """The paper's remediation loop: detect, revert, verify clean."""
        mc = ModChecker(tb.hypervisor, tb.profile)
        tb.hypervisor.snapshot("Dom2")
        _patch_text_in_memory(tb, "Dom2")
        assert mc.check_pool("hal.dll").report.flagged() == ["Dom2"]
        tb.hypervisor.revert("Dom2")
        assert mc.check_pool("hal.dll").report.all_clean

    def test_searcher_sees_reverted_state(self, tb):
        tb.hypervisor.snapshot("Dom3")
        _patch_text_in_memory(tb, "Dom3")
        tb.hypervisor.revert("Dom3")
        mc = ModChecker(tb.hypervisor, tb.profile)
        searcher = ModuleSearcher(mc.vmi_for("Dom3"))
        copy = searcher.copy_module("hal.dll")
        clean = tb.hypervisor.domain("Dom1").kernel
        # reverted bytes equal a clean clone's, modulo relocation
        assert len(copy.image) == clean.module("hal.dll").size_of_image
