"""Integration tests for the Fig. 7/8/9 performance shapes.

These assert the qualitative reproduction criteria from DESIGN.md §4;
the benchmark harness prints the full series.
"""

import pytest

from repro.analysis import detect_knee, linear_fit
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.perf import HEAVY_LOAD, GuestResourceMonitor, apply_workload


@pytest.fixture(scope="module")
def tb15():
    return build_testbed(15, seed=42)


def _sweep(tb, loaded):
    mc = ModChecker(tb.hypervisor, tb.profile)
    rows = []
    for t in range(2, 16):
        vms = tb.vm_names[:t]
        tb.set_guest_loads(0.0)
        if loaded:
            for name in vms:
                apply_workload(tb.hypervisor.domain(name), HEAVY_LOAD)
        out = mc.check_on_vm("http.sys", vms[0], vms)
        rows.append((t, out.timings))
    tb.set_guest_loads(0.0)
    return rows


class TestFig7Idle:
    def test_total_runtime_linear(self, tb15):
        rows = _sweep(tb15, loaded=False)
        xs = [t for t, _ in rows]
        ys = [tm.total for _, tm in rows]
        fit = linear_fit(xs, ys)
        assert fit.r_squared > 0.995
        assert fit.slope > 0
        assert detect_knee(xs, ys) is None

    def test_searcher_dominates_and_grows_linearly(self, tb15):
        rows = _sweep(tb15, loaded=False)
        xs = [t for t, _ in rows]
        searcher = [tm.searcher for _, tm in rows]
        total = [tm.total for _, tm in rows]
        assert linear_fit(xs, searcher).r_squared > 0.995
        # searcher is the dominant component at every pool size
        for s, tot in zip(searcher, total):
            assert s / tot > 0.5

    def test_parser_and_checker_small(self, tb15):
        rows = _sweep(tb15, loaded=False)
        for _, tm in rows:
            assert tm.parser < tm.searcher
            assert tm.checker < tm.searcher


class TestFig8Loaded:
    def test_loaded_slower_than_idle(self, tb15):
        idle = _sweep(tb15, loaded=False)
        loaded = _sweep(tb15, loaded=True)
        for (t_i, tm_i), (t_l, tm_l) in zip(idle, loaded):
            assert tm_l.total > tm_i.total

    def test_knee_where_loaded_vms_exceed_cores(self, tb15):
        rows = _sweep(tb15, loaded=True)
        xs = [t for t, _ in rows]
        ys = [tm.total for _, tm in rows]
        knee = detect_knee(xs, ys)
        assert knee is not None
        cores = tb15.hypervisor.cpu.logical_cpus
        assert cores - 3 <= knee <= cores + 2

    def test_superlinear_tail(self, tb15):
        rows = _sweep(tb15, loaded=True)
        ys = [tm.total for _, tm in rows]
        # slope of the last 4 points well above slope of the first 4
        early = linear_fit(list(range(4)), ys[:4]).slope
        late = linear_fit(list(range(4)), ys[-4:]).slope
        assert late > 2.0 * early


class TestFig9GuestImpact:
    def test_no_perturbation_during_introspection(self):
        tb = build_testbed(3, seed=42)
        mc = ModChecker(tb.hypervisor, tb.profile)
        domain = tb.hypervisor.domain("Dom1")
        monitor = GuestResourceMonitor(domain, tb.clock, seed=7)
        def check():
            return mc.check_pool("http.sys")
        trace = monitor.run(duration=120.0, interval=0.5,
                            events=[(t, check) for t in (20, 50, 80, 110)])
        assert len(trace.introspection_windows) == 4
        for attr in ("cpu_idle_pct", "cpu_user_pct",
                     "mem_free_physical_pct", "page_faults_per_s"):
            assert trace.perturbation(attr) < 3.0, attr

    def test_windows_have_positive_width(self):
        tb = build_testbed(2, seed=42)
        mc = ModChecker(tb.hypervisor, tb.profile)
        monitor = GuestResourceMonitor(tb.hypervisor.domain("Dom1"),
                                       tb.clock, seed=7)
        trace = monitor.run(duration=20.0, interval=1.0,
                            events=[(5.0, lambda: mc.check_pool("hal.dll"))])
        (t0, t1), = trace.introspection_windows
        assert t1 > t0
