"""OS-profile tests: introspection must be driven by the right profile.

Real libvmi needs a config matching the guest's exact kernel build;
these tests prove our reproduction shares that property — the OS
profile is load-bearing, not decorative.
"""

import pytest

from repro.cloud import build_testbed
from repro.core import ModChecker, ModuleSearcher
from repro.errors import ReproError
from repro.guest import GuestKernel
from repro.guest.ldr import LDR_LAYOUTS, WIN2003_LAYOUT, XP_SP2_LAYOUT
from repro.vmi import OSProfile


class TestLayouts:
    def test_known_flavors(self):
        assert set(LDR_LAYOUTS) == {"xp-sp2", "win2003"}

    def test_layouts_differ(self):
        assert XP_SP2_LAYOUT.off_dllbase != WIN2003_LAYOUT.off_dllbase
        assert XP_SP2_LAYOUT.entry_size != WIN2003_LAYOUT.entry_size

    def test_offsets_dict_roundtrip(self):
        offs = WIN2003_LAYOUT.offsets()
        assert offs["LDR_DATA_TABLE_ENTRY.DllBase"] == \
            WIN2003_LAYOUT.off_dllbase

    def test_unknown_flavor_rejected(self):
        with pytest.raises(ValueError, match="unknown os_flavor"):
            GuestKernel("x", os_flavor="win11")


class TestEntryLayoutRoundtrip:
    def test_pack_unpack_alt_layout(self):
        from repro.guest.ldr import LdrDataTableEntry, ListEntry
        from repro.guest.unicode_string import UnicodeString
        entry = LdrDataTableEntry(
            in_load_order=ListEntry(1, 2), in_memory_order=ListEntry(3, 4),
            in_init_order=ListEntry(5, 6), dll_base=0xF7010000,
            entry_point=0xF7011000, size_of_image=0x8000,
            full_dll_name=UnicodeString(4, 6, 0x100),
            base_dll_name=UnicodeString(4, 6, 0x200), flags=7, load_count=2)
        raw = entry.pack(WIN2003_LAYOUT)
        assert len(raw) == WIN2003_LAYOUT.entry_size
        assert LdrDataTableEntry.unpack(raw, WIN2003_LAYOUT) == entry

    def test_layouts_produce_different_bytes(self):
        from repro.guest.ldr import LdrDataTableEntry, ListEntry
        from repro.guest.unicode_string import UnicodeString
        entry = LdrDataTableEntry(
            in_load_order=ListEntry(1, 2), in_memory_order=ListEntry(0, 0),
            in_init_order=ListEntry(0, 0), dll_base=0xF7010000,
            entry_point=0, size_of_image=0x1000,
            full_dll_name=UnicodeString(0, 0, 0),
            base_dll_name=UnicodeString(0, 0, 0))
        assert entry.pack(XP_SP2_LAYOUT) != \
            entry.pack(WIN2003_LAYOUT)[:XP_SP2_LAYOUT.entry_size]


class TestAlternativeFlavorCloud:
    def test_full_pipeline_on_win2003(self, catalog):
        tb = build_testbed(4, seed=42, os_flavor="win2003")
        assert tb.profile.name == "Win2003-x86"
        mc = ModChecker(tb.hypervisor, tb.profile)
        report = mc.check_pool("hal.dll").report
        assert report.all_clean

    def test_detection_on_win2003(self):
        from repro.attacks import attack_for_experiment
        from repro.guest import build_catalog
        attack, module = attack_for_experiment("E1")
        catalog = build_catalog(seed=42)
        infected = attack.apply(catalog[module]).infected
        tb = build_testbed(4, seed=42, os_flavor="win2003",
                           infected={"Dom2": {module: infected}})
        mc = ModChecker(tb.hypervisor, tb.profile)
        report = mc.check_pool(module).report
        assert report.flagged() == ["Dom2"]
        assert report.mismatched_regions("Dom2") == (".text",)


class TestWrongProfile:
    def test_wrong_profile_misreads_the_guest(self, catalog):
        """Attach to a win2003 guest with an XP profile: DllBase reads
        from the wrong offset, so the walk yields garbage entries (or
        faults) — the classic wrong-Rekall-profile failure."""
        tb = build_testbed(2, seed=42, os_flavor="win2003")
        kernel = tb.hypervisor.domain("Dom1").kernel
        wrong = OSProfile(name="wrong", symbols=dict(kernel.symbols),
                          offsets=XP_SP2_LAYOUT.offsets())
        mc = ModChecker(tb.hypervisor, wrong)
        searcher = ModuleSearcher(mc.vmi_for("Dom1"))
        try:
            entries = searcher.list_modules()
        except ReproError:
            return                       # faulted: acceptable failure mode
        truth = {m.base for m in kernel.modules.values()}
        got = {e.dll_base for e in entries}
        assert got != truth              # garbage, not the real bases

    def test_right_profile_fixes_it(self, catalog):
        tb = build_testbed(2, seed=42, os_flavor="win2003")
        kernel = tb.hypervisor.domain("Dom1").kernel
        mc = ModChecker(tb.hypervisor, tb.profile)
        searcher = ModuleSearcher(mc.vmi_for("Dom1"))
        got = {e.dll_base for e in searcher.list_modules()}
        assert got == {m.base for m in kernel.modules.values()}
