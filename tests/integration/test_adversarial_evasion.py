"""Adversarial evasion attempts against Algorithm 2.

The RVA adjustment "explains away" byte differences that look like
relocated addresses — an attacker who can make malicious changes look
like relocation would slip past the hash. These tests mount the natural
evasion strategies from a single compromised VM and verify each one
still produces a mismatch (the paper's implicit claim: "the assumption
is valid until the code is altered by an adversary" — we show altering
the code never *satisfies* the assumption from one VM alone).
"""

import struct

import pytest

from repro.cloud import build_testbed
from repro.core import IntegrityChecker, ModChecker, ModuleParser
from repro.core.searcher import ModuleCopy
from repro.pe import PEImage


@pytest.fixture(scope="module")
def pool():
    tb = build_testbed(4, seed=42)
    mc = ModChecker(tb.hypervisor, tb.profile)
    parsed, *_ = mc.fetch_modules("hal.dll", tb.vm_names)
    return tb, parsed


def _retamper(target, mutate):
    """Apply ``mutate(bytearray image, target)`` and re-parse."""
    image = bytearray(target.image)
    mutate(image, target)
    return ModuleParser().parse(ModuleCopy(
        target.vm_name, target.module_name, target.base, bytes(image), 0))


def _first_text_slot(tb, target):
    """(slot offset in image, original value) of a genuine .text fixup."""
    blueprint = tb.catalog["hal.dll"]
    text = blueprint.section(".text")
    rva = next(r for r in blueprint.fixup_rvas
               if text.virtual_address <= r
               < text.virtual_address + text.virtual_size)
    value = struct.unpack_from("<I", target.image, rva)[0]
    return rva, value


class TestSlotRetargeting:
    def test_redirect_existing_slot_detected(self, pool):
        """Evasion 1: change a genuine relocated slot to point at
        attacker code. The diff lands exactly where Algorithm 2 expects
        an address — but the recovered RVAs disagree, so it stays."""
        tb, parsed = pool
        target, *others = parsed
        rva, _ = _first_text_slot(tb, target)

        def mutate(image, mod):
            evil = (mod.base + 0x666) & 0xFFFFFFFF    # plausible VA!
            struct.pack_into("<I", image, rva, evil)

        tampered = _retamper(target, mutate)
        report = IntegrityChecker().check_target(tampered, others)
        assert not report.clean
        assert ".text" in report.mismatched_regions()

    def test_slot_offset_by_small_delta_detected(self, pool):
        tb, parsed = pool
        target, *others = parsed
        rva, value = _first_text_slot(tb, target)

        def mutate(image, mod):
            struct.pack_into("<I", image, rva, (value + 4) & 0xFFFFFFFF)

        tampered = _retamper(target, mutate)
        report = IntegrityChecker().check_target(tampered, others)
        assert not report.clean


class TestFakeSlotInjection:
    def test_plausible_address_bytes_detected(self, pool):
        """Evasion 2: overwrite non-slot code bytes with something that
        decodes as (own base + small rva) — maximally relocation-like.
        The clean VMs' bytes at that spot do not decode to the same RVA
        against *their* bases, so no replacement happens."""
        tb, parsed = pool
        target, *others = parsed
        pe = PEImage(target.image)
        text = pe.section(".text")
        off = text.virtual_address + 0x40

        def mutate(image, mod):
            struct.pack_into("<I", image, off,
                             (mod.base + 0x100) & 0xFFFFFFFF)

        tampered = _retamper(target, mutate)
        report = IntegrityChecker().check_target(tampered, others)
        assert not report.clean
        assert ".text" in report.mismatched_regions()

    @pytest.mark.parametrize("mode", ["faithful", "robust", "vectorized"])
    def test_detected_under_every_adjuster(self, pool, mode):
        tb, parsed = pool
        target, *others = parsed
        pe = PEImage(target.image)
        text = pe.section(".text")
        off = text.virtual_address + 0x48

        def mutate(image, mod):
            struct.pack_into("<I", image, off,
                             (mod.base + 0x200) & 0xFFFFFFFF)

        tampered = _retamper(target, mutate)
        report = IntegrityChecker(rva_mode=mode).check_target(tampered,
                                                              others)
        assert not report.clean, mode


class TestBaseForgery:
    def test_lying_about_base_detected(self, pool):
        """Evasion 3: a rootkit rewrites its LDR entry's DllBase so the
        checker computes RVAs against a wrong base. Every genuine slot
        then decodes inconsistently — the module lights up entirely."""
        tb, parsed = pool
        target, *others = parsed
        lying = ModuleParser().parse(ModuleCopy(
            target.vm_name, target.module_name,
            target.base + 0x2000,            # forged base
            target.image, 0))
        report = IntegrityChecker().check_target(lying, others)
        assert not report.clean
        assert ".text" in report.mismatched_regions()


class TestCavePayloadDisguise:
    def test_payload_written_as_address_soup_detected(self, pool):
        """Evasion 4: hide the payload in a cave encoded as a string of
        plausible own-base 'addresses'. Clean VMs have zeros there —
        zero minus their base is an implausible RVA, so nothing is
        explained away."""
        tb, parsed = pool
        target, *others = parsed
        blueprint = tb.catalog["hal.dll"]
        cave = blueprint.caves_rva()[0]

        def mutate(image, mod):
            for k in range(0, min(cave.size, 16), 4):
                struct.pack_into("<I", image, cave.offset + k,
                                 (mod.base + 0x300 + k) & 0xFFFFFFFF)

        tampered = _retamper(target, mutate)
        report = IntegrityChecker().check_target(tampered, others)
        assert not report.clean
