"""End-to-end detection: the paper's E1–E4 through the full stack.

Each test stages the infection exactly as the paper did — modify the
module file, boot the victim VM with it — then runs ModChecker from
Dom0 over VMI and asserts (a) the infected VM alone fails the majority
vote and (b) the mismatching PE components equal the paper's reported
signature.
"""

import pytest

from repro.attacks import attack_for_experiment
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.guest import build_catalog

VICTIM = "Dom3"
POOL = 6


def _run_experiment(exp_id, *, rva_mode="robust", n_vms=POOL):
    attack, module = attack_for_experiment(exp_id)
    catalog = build_catalog(seed=42)
    result = attack.apply(catalog[module])
    tb = build_testbed(n_vms, seed=42,
                       infected={VICTIM: {module: result.infected}})
    mc = ModChecker(tb.hypervisor, tb.profile, rva_mode=rva_mode)
    return result, mc.check_pool(module).report


@pytest.mark.parametrize("exp_id", ["E1", "E2", "E3", "E4"])
class TestDetection:
    def test_only_victim_flagged(self, exp_id):
        _, report = _run_experiment(exp_id)
        assert report.flagged() == [VICTIM]

    def test_signature_matches_paper(self, exp_id):
        result, report = _run_experiment(exp_id)
        assert set(report.mismatched_regions(VICTIM)) == \
            set(result.expected_regions)

    def test_clean_vms_fully_matched(self, exp_id):
        _, report = _run_experiment(exp_id)
        for vm in report.clean_vms():
            assert report.verdicts[vm].matches == POOL - 2

    def test_victim_matches_nobody(self, exp_id):
        _, report = _run_experiment(exp_id)
        assert report.verdicts[VICTIM].matches == 0


@pytest.mark.parametrize("rva_mode", ["faithful", "robust", "vectorized"])
class TestRvaModesDetectEqually:
    def test_e1_detected_under_every_mode(self, rva_mode):
        _, report = _run_experiment("E1", rva_mode=rva_mode)
        assert report.flagged() == [VICTIM]
        assert ".text" in report.mismatched_regions(VICTIM)


class TestMinimumPool:
    def test_two_vms_detect_discrepancy(self):
        """With t=2 no majority exists (n > 0.5 means the single match
        decides); a mismatch flags *both* — still a detection signal,
        per the paper's discussion."""
        attack, module = attack_for_experiment("E1")
        catalog = build_catalog(seed=42)
        result = attack.apply(catalog[module])
        tb = build_testbed(2, seed=42,
                           infected={"Dom2": {module: result.infected}})
        mc = ModChecker(tb.hypervisor, tb.profile)
        report = mc.check_pool(module).report
        assert not report.all_clean
        assert set(report.flagged()) == {"Dom1", "Dom2"}

    def test_three_vms_strict_majority_flags_all(self):
        """t=3, one infected: a clean VM matches 1 of 2 others — exactly
        half, which the paper's strict rule ``n > (t-1)/2`` does not
        accept, so all three are flagged. The victim is still
        distinguishable by its zero matches."""
        attack, module = attack_for_experiment("E2")
        catalog = build_catalog(seed=42)
        result = attack.apply(catalog[module])
        tb = build_testbed(3, seed=42,
                           infected={"Dom2": {module: result.infected}})
        mc = ModChecker(tb.hypervisor, tb.profile)
        report = mc.check_pool(module).report
        assert "Dom2" in report.flagged()
        assert report.verdicts["Dom2"].matches == 0
        assert report.verdicts["Dom1"].matches == 1

    def test_four_vms_one_clean_majority_localises(self):
        """From t=4 up, a single infection is localised exactly: clean
        VMs match 2 of 3 > 1.5."""
        attack, module = attack_for_experiment("E2")
        catalog = build_catalog(seed=42)
        result = attack.apply(catalog[module])
        tb = build_testbed(4, seed=42,
                           infected={"Dom2": {module: result.infected}})
        mc = ModChecker(tb.hypervisor, tb.profile)
        report = mc.check_pool(module).report
        assert report.flagged() == ["Dom2"]


class TestPaperScale:
    def test_e1_at_fifteen_vms(self):
        """The full 15-clone cloud of §V-A."""
        result, report = _run_experiment("E1", n_vms=15)
        assert report.flagged() == [VICTIM]
        assert report.verdicts[VICTIM].comparisons == 14
        for vm in report.clean_vms():
            assert report.verdicts[vm].matches == 13
