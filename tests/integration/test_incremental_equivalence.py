"""Metamorphic equivalence: incremental and full pipelines agree.

For any seeded chaos trace, a daemon running with ``incremental=True``
— or with ``event_driven=True``, the trap pipeline — must produce the
same *observable verdict stream* as one running the full pipeline —
event for event on the verdict-bearing vocabulary (``check.start``,
``check.verdict``, ``pair.compared``, ``alert.raised``) and alert for
alert (times excluded: the modes advance the simulated clock
differently, which is the entire point of the optimisation).

The event-driven arms run the daemon with ``trap_priority=False``:
trap-ahead scheduling deliberately *reorders* checks, which changes
the stream's order without changing verdicts — exact stream equality
needs the byte-identical schedule. The reordering mode gets its own
test (:class:`TestTrapPriority`): detection must never be later, and
no spurious alerts may appear.

Fault injection is deliberately OFF (fault rate 0) in these runs:
injected faults are drawn per guest *read*, and the incremental sweep
performs different read sequences than the full path, so the fault
*placement* — not the pipeline's correctness — would differ between
modes. Fault-handling equivalence is covered by the invalidation unit
tests in ``tests/core/test_incremental.py`` instead.
"""

import pytest

from repro.attacks.memory import RuntimeCodePatchAttack
from repro.cloud import ChaosConfig, ChaosEngine, build_testbed
from repro.core import ModChecker
from repro.core.daemon import CheckDaemon
from repro.obs import make_observability

#: The verdict-bearing event names compared across modes. Excluded by
#: design: ``module.acquired`` (its outcome legitimately differs —
#: "manifest" vs "ok"), ``manifest.*`` (only exist in one mode), and
#: the chaos/membership/breaker plumbing (covered by the alert and
#: verdict comparison; their attrs embed no verdict information).
COMPARED = ("check.start", "check.verdict", "pair.compared",
            "alert.raised")

SEEDS = range(10)


def _run(seed: int, *, incremental: bool, event_driven: bool = False,
         cycles: int = 8, churn_rate: float = 0.35,
         infected: dict | None = None, tamper_at: int | None = None,
         trap_priority: bool = False, batch: bool = True):
    """One seeded daemon soak; returns (events, alerts, chaos kinds)."""
    tb = build_testbed(5, seed=seed, infected=infected)
    obs = make_observability(tb.clock)
    mc = ModChecker(tb.hypervisor, tb.profile, obs=obs,
                    incremental=incremental, event_driven=event_driven,
                    batch=batch)
    engine = ChaosEngine(tb.hypervisor,
                         ChaosConfig.from_churn_rate(churn_rate),
                         seed=seed, catalog=tb.catalog)
    daemon = CheckDaemon(mc, chaos=engine, trap_priority=trap_priority)
    for cycle in range(cycles):
        if tamper_at is not None and cycle == tamper_at:
            RuntimeCodePatchAttack().apply(
                tb.hypervisor.domain("Dom2").kernel,
                tb.catalog["hal.dll"])
        daemon.run_cycle()
    stream = [(e.name, e.attrs) for e in obs.events.events
              if e.name in COMPARED]
    alerts = [(a.module, a.flagged_vms, a.regions, a.kind, a.degraded)
              for a in daemon.log.alerts]
    kinds = {e.attrs["kind"] for e in obs.events.by_name("chaos.applied")}
    return stream, alerts, kinds


class TestChurnEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_verdict_stream_identical_under_churn(self, seed):
        full = _run(seed, incremental=False)
        fast = _run(seed, incremental=True)
        assert fast[0] == full[0]
        assert fast[1] == full[1]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_trap_pipeline_identical_under_churn(self, seed):
        full = _run(seed, incremental=False)
        trap = _run(seed, incremental=True, event_driven=True)
        assert trap[0] == full[0]
        assert trap[1] == full[1]

    def test_seed_set_exercises_reboot_and_migration(self):
        """The metamorphic claim is vacuous if no seed ever reboots or
        migrates a guest; assert the trace corpus covers both."""
        kinds = set()
        for seed in SEEDS:
            kinds |= _run(seed, incremental=True)[2]
        assert "reboot" in kinds
        assert "migrate-finish" in kinds


class TestTamperEquivalence:
    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_baked_in_infection(self, seed):
        """A clone infected from first boot is convicted identically."""
        from repro.attacks import attack_for_experiment
        attack, module = attack_for_experiment("E1")
        catalog = build_testbed(2, seed=seed).catalog   # blueprint source
        result = attack.apply(catalog[module])
        infected = {"Dom2": {module: result.infected}}
        full = _run(seed, incremental=False, infected=infected)
        fast = _run(seed, incremental=True, infected=infected)
        trap = _run(seed, incremental=True, event_driven=True,
                    infected=infected)
        assert fast[0] == full[0]
        assert fast[1] == full[1]
        assert trap[0] == full[0]
        assert trap[1] == full[1]
        assert any("Dom2" in a[1] for a in fast[1])     # it was caught

    @pytest.mark.parametrize("seed", [1, 5])
    def test_midstream_tamper(self, seed):
        """In-place tamper after manifests are warm: the sweep-based
        and trap-based pipelines must convict on the same cycle as the
        full one."""
        full = _run(seed, incremental=False, churn_rate=0.0, tamper_at=4)
        fast = _run(seed, incremental=True, churn_rate=0.0, tamper_at=4)
        trap = _run(seed, incremental=True, event_driven=True,
                    churn_rate=0.0, tamper_at=4)
        assert fast[0] == full[0]
        assert fast[1] == full[1]
        assert trap[0] == full[0]
        assert trap[1] == full[1]
        assert any("Dom2" in a[1] for a in fast[1])


class TestBatchEquivalence:
    """The vectorised acquisition path is a pure substrate swap: for
    any seeded chaos trace, every pipeline mode must emit the same
    verdict stream and alert list with ``batch=False`` (the scalar
    reference loops) as with the default ``batch=True``."""

    @pytest.mark.parametrize("seed", [0, 4, 8])
    @pytest.mark.parametrize("mode", ["full", "incremental", "trap"])
    def test_verdicts_identical_across_batch_arms(self, seed, mode):
        kwargs = {"incremental": mode != "full",
                  "event_driven": mode == "trap"}
        batched = _run(seed, batch=True, **kwargs)
        scalar = _run(seed, batch=False, **kwargs)
        assert batched[0] == scalar[0]
        assert batched[1] == scalar[1]

    @pytest.mark.parametrize("seed", [1, 5])
    def test_midstream_tamper_convicted_identically(self, seed):
        batched = _run(seed, incremental=True, event_driven=True,
                       churn_rate=0.0, tamper_at=4, batch=True)
        scalar = _run(seed, incremental=True, event_driven=True,
                      churn_rate=0.0, tamper_at=4, batch=False)
        assert batched[0] == scalar[0]
        assert batched[1] == scalar[1]
        assert any("Dom2" in a[1] for a in batched[1])


class TestTrapPriority:
    """Trap-ahead scheduling (the daemon default) reorders the stream;
    it must never delay detection and must add no spurious alerts."""

    @pytest.mark.parametrize("seed", [1, 5])
    def test_no_spurious_alerts_and_no_later_detection(self, seed):
        base = _run(seed, incremental=True, event_driven=True,
                    churn_rate=0.0, tamper_at=4)
        prio = _run(seed, incremental=True, event_driven=True,
                    churn_rate=0.0, tamper_at=4, trap_priority=True)
        # the same *distinct* alerts: nothing invented, nothing missed
        # (the urgent re-check may repeat an alert for a module that
        # stays tampered — a duplicate conviction, not a spurious one)
        assert set(prio[1]) == set(base[1])
        assert any("Dom2" in a[1] for a in prio[1])
        # detection is never later: the first alert appears no deeper
        # into the verdict stream than without priority scheduling
        first = [(e, a) for e, a in base[0]].index(
            next((e, a) for e, a in base[0] if e == "alert.raised"))
        first_prio = [(e, a) for e, a in prio[0]].index(
            next((e, a) for e, a in prio[0] if e == "alert.raised"))
        assert first_prio <= first

    @pytest.mark.parametrize("seed", [2, 6])
    def test_quiet_pool_priority_is_a_no_op(self, seed):
        # no churn, no tamper: nothing ever traps, so the urgent list
        # is empty every cycle and the streams are byte-identical
        base = _run(seed, incremental=True, event_driven=True,
                    churn_rate=0.0)
        prio = _run(seed, incremental=True, event_driven=True,
                    churn_rate=0.0, trap_priority=True)
        assert prio[0] == base[0]
        assert prio[1] == base[1] == []
