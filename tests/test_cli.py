"""Tests for the command-line interface."""

import pytest

from repro.cli import build_arg_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args([])

    def test_check_defaults(self):
        args = build_arg_parser().parse_args(["check"])
        assert args.module == "hal.dll"
        assert args.vms == 6
        assert args.hash == "md5"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["explode"])


class TestCheck:
    def test_clean_pool_exit_zero(self, capsys):
        rc = main(["check", "--module", "hal.dll", "--vms", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CLEAN" in out and "FLAGGED" not in out

    def test_infected_pool_exit_one(self, capsys):
        rc = main(["check", "--vms", "5", "--infect", "E1",
                   "--victim", "Dom2"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FLAGGED" in out
        assert ".text" in out

    def test_experiment_dictates_module(self, capsys):
        rc = main(["check", "--module", "hal.dll", "--vms", "4",
                   "--infect", "E3"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "dummy.sys" in out
        assert "IMAGE_DOS_HEADER" in out

    def test_hash_option(self, capsys):
        rc = main(["check", "--vms", "4", "--hash", "sha256"])
        assert rc == 0
        assert "sha256" in capsys.readouterr().out

    def test_rva_mode_option(self, capsys):
        rc = main(["check", "--vms", "4", "--rva-mode", "vectorized"])
        assert rc == 0


class TestSweep:
    def test_clean_sweep(self, capsys):
        rc = main(["sweep", "--vms", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "hal.dll" in out and "http.sys" in out

    def test_infected_sweep_nonzero(self, capsys):
        rc = main(["sweep", "--vms", "4", "--infect", "E2",
                   "--victim", "Dom2"])
        assert rc == 1


class TestHidden:
    def test_no_hidden(self, capsys):
        rc = main(["hidden", "--vms", "2"])
        assert rc == 0
        assert "no hidden modules" in capsys.readouterr().out

    def test_hidden_demo(self, capsys):
        rc = main(["hidden", "--vms", "3", "--hide", "dummy.sys",
                   "--victim", "Dom2"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "HIDDEN module" in out
        assert "dummy.sys" in out


class TestDaemon:
    def test_quiet_daemon(self, capsys):
        rc = main(["daemon", "--vms", "3", "--cycles", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "quiet" in out

    def test_infected_daemon(self, capsys):
        rc = main(["daemon", "--vms", "4", "--cycles", "4",
                   "--infect", "E1", "--victim", "Dom2"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "hal.dll" in out


class TestExperiment:
    def test_single_experiment(self, capsys):
        rc = main(["experiment", "e3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "stub-modification" in out

    def test_unknown_experiment(self, capsys):
        rc = main(["experiment", "e99"])
        assert rc == 2


class TestCrossView:
    def test_clean(self, capsys):
        rc = main(["crossview", "--vms", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 hidden, 0 decoy" in out

    def test_hidden_and_decoy(self, capsys):
        rc = main(["crossview", "--vms", "3", "--hide", "dummy.sys",
                   "--decoy", "--victim", "Dom2"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "1 hidden, 1 decoy" in out
        assert "ghost.sys" in out


class TestPoolMode:
    def test_canonical_mode(self, capsys):
        rc = main(["check", "--vms", "5", "--pool-mode", "canonical",
                   "--infect", "E1", "--victim", "Dom2"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FLAGGED" in out


class TestDump:
    def test_offline_check_clean(self, capsys):
        rc = main(["dump", "--vms", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "offline cross-check" in out

    def test_offline_check_infected(self, capsys):
        rc = main(["dump", "--vms", "4", "--infect", "E1",
                   "--victim", "Dom2"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FLAGGED" in out


class TestFleet:
    """The fleet health check's OK/WARN/CRITICAL/UNKNOWN contract."""

    def test_clean_fleet_exit_zero(self, capsys):
        rc = main(["fleet", "--vms", "12", "--shard-size", "4",
                   "--cycles", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fleet OK" in out
        assert "shard(s)" in out

    def test_killswitch_short_circuits_to_ok(self, capsys):
        rc = main(["fleet", "--vms", "12", "--killswitch"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "killswitch active" in out
        assert "cycle" not in out           # no checks ran

    def test_tampered_fleet_exit_two(self, capsys):
        rc = main(["fleet", "--vms", "12", "--shard-size", "4",
                   "--cycles", "2", "--infect", "E1",
                   "--victim", "Dom3"])
        out = capsys.readouterr().out
        assert rc == 2
        assert "fleet CRITICAL" in out
        assert "Dom3" in out

    def test_degraded_fleet_exit_one(self, capsys):
        rc = main(["fleet", "--vms", "12", "--shard-size", "4",
                   "--cycles", "2", "--fault-rate", "0.35",
                   "--retry", "0"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "fleet WARN" in out

    def test_bad_sink_exit_three(self, capsys):
        rc = main(["fleet", "--vms", "12", "--sink", "carrier-pigeon"])
        err = capsys.readouterr().err
        assert rc == 3
        assert "fleet UNKNOWN" in err

    def test_sink_opts_validated_before_any_work(self, capsys):
        rc = main(["fleet", "--vms", "12", "--sink", "jsonl"])
        captured = capsys.readouterr()
        assert rc == 3
        assert "path=" in captured.err
        assert "cycle" not in captured.out

    def test_stdout_sink_emits_record(self, capsys):
        import json
        rc = main(["fleet", "--vms", "12", "--shard-size", "4",
                   "--cycles", "1", "--sink", "stdout"])
        out = capsys.readouterr().out
        record = next(json.loads(line) for line in out.splitlines()
                      if line.startswith("{"))
        assert rc == 0
        assert record["check"] == "modchecker-fleet"
        assert record["status"] == "OK"
        assert record["exit_code"] == 0
        assert record["vm_checks_total"] > 0

    def test_jsonl_sink_writes_file(self, tmp_path):
        import json
        path = tmp_path / "fleet.jsonl"
        rc = main(["fleet", "--vms", "12", "--shard-size", "4",
                   "--cycles", "1", "--sink", "jsonl",
                   "--sink-opts", f"path={path}"])
        rows = [json.loads(line)
                for line in path.read_text().splitlines()]
        assert rc == 0
        assert len(rows) == 1 and rows[0]["status"] == "OK"

    def test_prometheus_sink_writes_fleet_series(self, tmp_path):
        path = tmp_path / "fleet.prom"
        rc = main(["fleet", "--vms", "12", "--shard-size", "4",
                   "--cycles", "1", "--sink", "prometheus",
                   "--sink-opts", f"path={path}"])
        text = path.read_text()
        assert rc == 0
        assert "modchecker_fleet_vm_checks_total" in text
