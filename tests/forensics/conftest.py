"""Forensics-local fixtures: the --update-golden switch.

The option itself is declared in ``tests/conftest.py`` — pytest only
honours ``pytest_addoption`` in an initial conftest, not in nested
ones — this file just exposes it as a fixture.
"""

import pytest


@pytest.fixture(scope="session")
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")
