"""Golden-file regression for the forensic evidence pipeline.

One fully seeded incident — an E1 code-patch infection on a 4-VM pool
with live observability — is captured end to end, and both artefacts a
responder actually consumes are pinned byte-for-byte under
``tests/forensics/golden/``:

* the ``modchecker-evidence/1`` JSON bundle exactly as
  :func:`write_bundle` persists it, and
* the rendered incident report behind ``modchecker explain``.

Any change to the bundle schema, hex encoding, key ordering, timeline
correlation or report layout shows up here as a readable diff instead
of silently breaking downstream consumers of archived bundles.

Refreshing after an INTENTIONAL format change::

    PYTHONPATH=src python -m pytest tests/forensics/test_golden_bundle.py \
        --update-golden

(the option is declared in ``tests/conftest.py``; ``pytest_addoption``
must live in an initial conftest). Review the resulting diff under
``tests/forensics/golden/`` before committing — a golden refresh IS the
format change.
"""

from __future__ import annotations

import difflib
import json
from pathlib import Path

import pytest

from repro.attacks import attack_for_experiment
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.forensics import EvidenceRecorder, render_incident_report
from repro.forensics.bundle import (BUNDLE_FORMAT, bundle_to_dict,
                                    load_bundle, write_bundle)
from repro.guest import build_catalog
from repro.obs import make_observability

GOLDEN_DIR = Path(__file__).parent / "golden"
BUNDLE_GOLDEN = GOLDEN_DIR / "incident-0001-chk-000001.json"
REPORT_GOLDEN = GOLDEN_DIR / "incident-0001.report.txt"

SEED = 42
VICTIM = "Dom3"
MODULE = "hal.dll"


@pytest.fixture(scope="module")
def incident(tmp_path_factory):
    """The seeded incident: bundle object + the two serialised forms."""
    attack, module = attack_for_experiment("E1")
    assert module == MODULE
    result = attack.apply(build_catalog(seed=SEED)[module])
    tb = build_testbed(4, seed=SEED,
                       infected={VICTIM: {module: result.infected}})
    obs = make_observability(tb.clock)
    rec = EvidenceRecorder()
    mc = ModChecker(tb.hypervisor, tb.profile, obs=obs, evidence=rec)
    mc.check_pool(module)
    bundle = rec.last
    assert bundle is not None and bundle.flagged == [VICTIM]
    # serialise through the real writer so the golden pins the on-disk
    # form, not a lookalike
    path = write_bundle(bundle,
                        tmp_path_factory.mktemp("bundle") / "b.json")
    return bundle, path.read_text(), render_incident_report(bundle)


def _assert_matches(golden: Path, actual: str, update: bool) -> None:
    if update:
        golden.parent.mkdir(parents=True, exist_ok=True)
        golden.write_text(actual)
        pytest.skip(f"golden refreshed: {golden.name}; "
                    f"re-run without --update-golden")
    assert golden.exists(), (
        f"missing golden file {golden}; generate it with --update-golden")
    expected = golden.read_text()
    if actual != expected:
        diff = "".join(difflib.unified_diff(
            expected.splitlines(keepends=True),
            actual.splitlines(keepends=True),
            fromfile=f"golden/{golden.name}", tofile="regenerated", n=3))
        pytest.fail(f"output drifted from {golden.name} "
                    f"(--update-golden refreshes after an intentional "
                    f"change):\n{diff}")


class TestGoldenFiles:
    def test_bundle_json_matches_golden(self, incident, update_golden):
        _, bundle_json, _ = incident
        _assert_matches(BUNDLE_GOLDEN, bundle_json, update_golden)

    def test_rendered_report_matches_golden(self, incident, update_golden):
        _, _, report = incident
        _assert_matches(REPORT_GOLDEN, report, update_golden)


class TestGoldenProperties:
    """Schema-level guarantees asserted against the committed files, so
    they hold for archived bundles, not just freshly captured ones."""

    def test_golden_round_trips_through_loader(self):
        bundle = load_bundle(BUNDLE_GOLDEN)
        redumped = json.dumps(bundle_to_dict(bundle), sort_keys=True,
                              indent=2) + "\n"
        assert redumped == BUNDLE_GOLDEN.read_text()

    def test_golden_renders_to_golden_report(self):
        assert render_incident_report(load_bundle(BUNDLE_GOLDEN)) == \
            REPORT_GOLDEN.read_text()

    def test_golden_format_tag_and_verdict(self):
        doc = json.loads(BUNDLE_GOLDEN.read_text())
        assert doc["format"] == BUNDLE_FORMAT
        assert doc["flagged"] == [VICTIM]
        assert doc["module_name"] == MODULE
        # the timeline really was correlated to the flagged check
        assert doc["check_id"] == "chk-000001"
        assert any(e["event"] == "check.verdict" for e in doc["timeline"])
