"""Forensics package tests."""
