"""Evidence capture tests: bundles, reference choice, recorder policy."""

from __future__ import annotations

from repro.attacks import attack_for_experiment
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.forensics import EvidenceRecorder, capture_evidence
from repro.guest import build_catalog
from repro.hypervisor.clock import SimClock
from repro.obs import EventLog

VICTIM = "Dom3"


def _infected_pool(exp_id="E1", n_vms=4, seed=42):
    attack, module = attack_for_experiment(exp_id)
    result = attack.apply(build_catalog(seed=seed)[module])
    tb = build_testbed(n_vms, seed=seed,
                       infected={VICTIM: {module: result.infected}})
    mc = ModChecker(tb.hypervisor, tb.profile)
    parsed, *_ = mc.fetch_modules(module, tb.vm_names)
    report = mc.check_pool(module).report
    return tb, result, report, parsed


class TestCaptureEvidence:
    def test_bundle_names_suspect_and_tampered_section(self):
        _, result, report, parsed = _infected_pool("E1")
        bundle = capture_evidence(report, parsed)
        assert bundle.flagged == [VICTIM]
        suspect = bundle.suspect(VICTIM)
        assert suspect.tampered_regions() == [".text"]
        assert bundle.unexplained_hunks >= 1

    def test_tamper_hunk_carries_exact_attack_bytes(self):
        _, result, report, parsed = _infected_pool("E1")
        bundle = capture_evidence(report, parsed)
        text = next(d for d in bundle.suspect(VICTIM).region_diffs
                    if d.region == ".text")
        hunk = text.unexplained[0]
        # E1 rewrites DEC ECX (49) + two NOPs into SUB ECX,1 (83 E9 01)
        assert hunk.offset == result.details["text_offset"]
        assert hunk.suspect_bytes == b"\x83\xe9\x01"
        assert hunk.reference_bytes == b"\x49\x90\x90"

    def test_reference_is_first_clean_vm_alphabetically(self):
        _, _, report, parsed = _infected_pool("E1")
        bundle = capture_evidence(report, parsed)
        assert bundle.suspect(VICTIM).reference_vm == \
            sorted(report.clean_vms())[0]

    def test_voting_matrix_covers_every_pair(self):
        _, _, report, parsed = _infected_pool("E1", n_vms=4)
        bundle = capture_evidence(report, parsed)
        assert len(bundle.voting_matrix) == 4 * 3 // 2
        mismatch_rows = [r for r in bundle.voting_matrix
                         if not r["matched"]]
        assert all(VICTIM in (r["vm_a"], r["vm_b"])
                   for r in mismatch_rows)

    def test_pe_layout_summarises_suspect_regions(self):
        _, _, report, parsed = _infected_pool("E1")
        layout = capture_evidence(report, parsed).suspect(VICTIM).pe_layout
        names = [r["name"] for r in layout]
        assert "IMAGE_DOS_HEADER" in names and ".text" in names
        assert all(r["size"] == r["end"] - r["start"] for r in layout)

    def test_timeline_filtered_by_check_id(self):
        _, _, report, parsed = _infected_pool("E1")
        log = EventLog(SimClock())
        with log.correlate("chk-000001"):
            log.emit("check.start", module="hal.dll")
        log.emit("daemon.cycle")             # uncorrelated noise
        bundle = capture_evidence(report, parsed, events=log,
                                  check_id="chk-000001")
        assert [e.name for e in bundle.timeline] == ["check.start"]
        assert bundle.check_id == "chk-000001"


class TestEvidenceRecorder:
    def test_bundle_ids_count_up_and_shelf_is_bounded(self):
        _, _, report, parsed = _infected_pool("E1")
        rec = EvidenceRecorder(max_bundles=2)
        ids = [rec.record(report, parsed).bundle_id for _ in range(3)]
        assert ids == ["incident-0001", "incident-0002", "incident-0003"]
        assert rec.captures == 3
        assert [b.bundle_id for b in rec.bundles] == \
            ["incident-0002", "incident-0003"]
        assert rec.last.bundle_id == "incident-0003"

    def test_out_dir_gets_deterministic_filenames(self, tmp_path):
        _, _, report, parsed = _infected_pool("E1")
        rec = EvidenceRecorder(out_dir=tmp_path)
        rec.record(report, parsed, check_id="chk-000007")
        rec.record(report, parsed)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["incident-0001-chk-000007.json",
                         "incident-0002.json"]


class TestWiredThroughModChecker:
    def test_capture_only_on_non_clean_verdict(self):
        # clean pool: the recorder is wired but must never fire
        tb = build_testbed(3, seed=42)
        rec = EvidenceRecorder()
        mc = ModChecker(tb.hypervisor, tb.profile, evidence=rec)
        assert mc.check_pool("hal.dll").report.all_clean
        assert rec.captures == 0
        assert rec.last is None

    def test_infected_pool_fires_once_per_check(self):
        attack, module = attack_for_experiment("E1")
        result = attack.apply(build_catalog(seed=42)[module])
        tb = build_testbed(4, seed=42,
                           infected={VICTIM: {module: result.infected}})
        rec = EvidenceRecorder()
        mc = ModChecker(tb.hypervisor, tb.profile, evidence=rec)
        mc.check_pool(module)
        assert rec.captures == 1
        assert rec.last.flagged == [VICTIM]
        assert rec.last.unexplained_hunks >= 1

    def test_evidence_counter_published_with_live_metrics(self):
        from repro.obs import make_observability
        attack, module = attack_for_experiment("E1")
        result = attack.apply(build_catalog(seed=42)[module])
        tb = build_testbed(4, seed=42,
                           infected={VICTIM: {module: result.infected}})
        obs = make_observability(tb.clock)
        rec = EvidenceRecorder()
        mc = ModChecker(tb.hypervisor, tb.profile, obs=obs, evidence=rec)
        mc.check_pool(module)
        assert obs.metrics.counter(
            "modchecker_evidence_bundles_total").value() == 1
