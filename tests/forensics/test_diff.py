"""Relocation-aware byte-diff tests: classification, caps, structure."""

from __future__ import annotations

import struct

from repro.core.parser import ParsedModule
from repro.core.rva import adjust_rva_robust
from repro.forensics.diff import (HUNK_BYTE_CAP, diff_modules,
                                  diff_region_pair)
from repro.pe.parser import Region

BASE_S, BASE_R = 0x0010_0000, 0x0020_0000


def _code(base: int, rvas: list[int], size: int = 64) -> bytes:
    """NOP sled with absolute pointers to ``base + rva`` planted in it."""
    buf = bytearray(b"\x90" * size)
    for i, rva in enumerate(rvas):
        struct.pack_into("<I", buf, 8 + 8 * i, base + rva)
    return bytes(buf)


class TestCleanPairs:
    def test_identical_copies_produce_no_hunks(self):
        data = _code(BASE_S, [0x40, 0x80])
        d = diff_region_pair(".text", data, BASE_S, data, BASE_S)
        assert d.hunks == [] and d.clean

    def test_relocated_copies_fully_explained(self):
        rvas = [0x40, 0x80, 0x100]
        d = diff_region_pair(".text", _code(BASE_S, rvas), BASE_S,
                             _code(BASE_R, rvas), BASE_R)
        assert d.clean
        assert [h.kind for h in d.hunks] == ["relocation"] * 3
        assert [h.rva for h in d.hunks] == rvas
        assert [h.offset for h in d.hunks] == [8, 16, 24]

    def test_stats_agree_with_robust_adjuster(self):
        rvas = [0x40, 0x80]
        data_s, data_r = _code(BASE_S, rvas), _code(BASE_R, rvas)
        d = diff_region_pair(".text", data_s, BASE_S, data_r, BASE_R)
        _, _, stats = adjust_rva_robust(data_s, BASE_S, data_r, BASE_R)
        assert (d.rva_stats.replaced, d.rva_stats.unresolved) == \
            (stats.replaced, stats.unresolved)


class TestTamper:
    def test_tamper_hunk_reports_exact_offset_and_bytes(self):
        rvas = [0x40]
        suspect = bytearray(_code(BASE_S, rvas))
        suspect[3:6] = b"\x83\xe9\x01"       # SUB ECX,1 over NOPs
        d = diff_region_pair(".text", bytes(suspect), BASE_S,
                             _code(BASE_R, rvas), BASE_R)
        assert not d.clean
        tamper = d.unexplained
        assert len(tamper) == 1
        h = tamper[0]
        assert (h.offset, h.length) == (3, 3)
        assert h.suspect_bytes == b"\x83\xe9\x01"
        assert h.reference_bytes == b"\x90\x90\x90"
        # the legitimate pointer is still relocation-explained
        assert [r.rva for r in d.hunks if r.kind == "relocation"] == rvas

    def test_header_regions_diff_raw(self):
        # base-independent region: any difference is tamper, even a
        # plausible-looking pointer slot
        a = bytearray(32)
        b = bytearray(32)
        struct.pack_into("<I", a, 8, BASE_S + 0x40)
        struct.pack_into("<I", b, 8, BASE_R + 0x40)
        d = diff_region_pair("IMAGE_NT_HEADER", bytes(a), BASE_S,
                             bytes(b), BASE_R, relocatable=False)
        assert [h.kind for h in d.hunks] == ["tamper"]

    def test_adjacent_tamper_bytes_group_into_one_hunk(self):
        data_r = b"\x90" * 16
        data_s = b"\x90\x90\xde\xad\xbe\xef" + b"\x90" * 10
        d = diff_region_pair(".text", data_s, BASE_S, data_r, BASE_S)
        assert len(d.hunks) == 1
        assert (d.hunks[0].offset, d.hunks[0].length) == (2, 4)


class TestStructural:
    def test_length_mismatch_adds_structural_tail(self):
        data_r = b"\x90" * 16
        data_s = data_r + b"\xcc" * 4
        d = diff_region_pair(".text", data_s, BASE_S, data_r, BASE_S)
        kinds = [h.kind for h in d.hunks]
        assert kinds == ["structural"]
        assert d.hunks[0].offset == 16
        assert d.hunks[0].suspect_bytes == b"\xcc" * 4
        assert d.hunks[0].reference_bytes == b""
        assert not d.clean


class TestCaps:
    def test_hunk_bytes_capped_but_length_exact(self):
        n = HUNK_BYTE_CAP * 3
        data_s = b"\xcc" * n
        data_r = b"\x90" * n
        d = diff_region_pair(".data", data_s, BASE_S, data_r, BASE_S,
                             relocatable=False)
        h = d.hunks[0]
        assert h.length == n
        assert len(h.suspect_bytes) == HUNK_BYTE_CAP
        assert h.truncated

    def test_relocations_never_crowd_out_tamper(self):
        # More relocation slots than the cap, then one tamper byte at
        # the very end: the tamper hunk must still be captured.
        rvas = [0x40 + 4 * i for i in range(10)]
        size = 8 + 8 * len(rvas) + 8
        suspect = bytearray(_code(BASE_S, rvas, size=size))
        suspect[-1] = 0xCC
        d = diff_region_pair(".text", bytes(suspect), BASE_S,
                             _code(BASE_R, rvas, size=size), BASE_R,
                             max_hunks=4)
        assert len(d.unexplained) == 1
        assert d.unexplained[0].offset == size - 1
        assert d.dropped_relocations == len(rvas) - 4
        assert d.dropped_hunks == 0


def _parsed(vm: str, base: int, *, rvas=(0x40,), tamper_at=None,
            extra_region=False) -> ParsedModule:
    header = bytes(range(32))
    code = bytearray(_code(base, list(rvas)))
    if tamper_at is not None:
        code[tamper_at] ^= 0xFF
    image = header + bytes(code) + (b"\xee" * 16 if extra_region else b"")
    header_regions = [Region("IMAGE_DOS_HEADER", 0, 32)]
    code_regions = [Region(".text", 32, 32 + len(code))]
    if extra_region:
        code_regions.append(Region(".evil", 32 + len(code), len(image)))
    return ParsedModule(vm_name=vm, module_name="hal.dll", base=base,
                        image=image, header_regions=header_regions,
                        code_regions=code_regions)


class TestDiffModules:
    def test_clean_relocated_modules_all_explained(self):
        diffs = diff_modules(_parsed("Dom1", BASE_S),
                             _parsed("Dom2", BASE_R))
        assert all(d.clean for d in diffs)
        assert [d.region for d in diffs] == [".text"]

    def test_tampered_code_flagged_with_region_name(self):
        diffs = diff_modules(_parsed("Dom1", BASE_S, tamper_at=2),
                             _parsed("Dom2", BASE_R))
        bad = [d for d in diffs if not d.clean]
        assert [d.region for d in bad] == [".text"]
        assert bad[0].unexplained[0].offset == 2

    def test_region_on_one_side_is_structural(self):
        diffs = diff_modules(_parsed("Dom1", BASE_S, extra_region=True),
                             _parsed("Dom2", BASE_R))
        evil = next(d for d in diffs if d.region == ".evil")
        assert [h.kind for h in evil.hunks] == ["structural"]
        assert evil.hunks[0].suspect_bytes.startswith(b"\xee")
        assert evil.hunks[0].reference_bytes == b""

    def test_identical_regions_omitted(self):
        diffs = diff_modules(_parsed("Dom1", BASE_S),
                             _parsed("Dom2", BASE_S))
        assert diffs == []
