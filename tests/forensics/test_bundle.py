"""Bundle serialisation tests: round trip, stability, rendering."""

from __future__ import annotations

import json

import pytest

from repro.attacks import attack_for_experiment
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.forensics import (EvidenceRecorder, bundle_from_dict,
                             bundle_to_dict, capture_evidence, load_bundle,
                             render_incident_report, write_bundle)
from repro.guest import build_catalog
from repro.hypervisor.clock import SimClock
from repro.obs import EventLog

VICTIM = "Dom3"


def _bundle():
    attack, module = attack_for_experiment("E1")
    result = attack.apply(build_catalog(seed=42)[module])
    tb = build_testbed(4, seed=42,
                       infected={VICTIM: {module: result.infected}})
    mc = ModChecker(tb.hypervisor, tb.profile)
    parsed, *_ = mc.fetch_modules(module, tb.vm_names)
    report = mc.check_pool(module).report
    log = EventLog(SimClock())
    with log.correlate("chk-000001"):
        log.emit("check.start", module=module, vms=len(tb.vm_names))
        log.emit("check.verdict", flagged=[VICTIM])
    return capture_evidence(report, parsed, events=log,
                            check_id="chk-000001", captured_at=12.5)


class TestRoundTrip:
    def test_to_dict_from_dict_preserves_everything(self):
        bundle = _bundle()
        clone = bundle_from_dict(bundle_to_dict(bundle))
        assert clone.bundle_id == bundle.bundle_id
        assert clone.module_name == bundle.module_name
        assert clone.captured_at == bundle.captured_at
        assert clone.check_id == bundle.check_id
        assert clone.flagged == bundle.flagged
        assert clone.voting_matrix == bundle.voting_matrix
        assert clone.unexplained_hunks == bundle.unexplained_hunks
        s, c = bundle.suspect(VICTIM), clone.suspect(VICTIM)
        assert c.reference_vm == s.reference_vm
        assert (c.base, c.reference_base) == (s.base, s.reference_base)
        assert c.pe_layout == s.pe_layout
        assert [h for d in c.region_diffs for h in d.hunks] == \
            [h for d in s.region_diffs for h in d.hunks]
        assert [e.name for e in clone.timeline] == \
            [e.name for e in bundle.timeline]

    def test_dict_form_is_pure_json(self):
        doc = bundle_to_dict(_bundle())
        assert json.loads(json.dumps(doc)) == doc

    def test_write_then_load_then_rewrite_is_byte_identical(self, tmp_path):
        bundle = _bundle()
        p1 = write_bundle(bundle, tmp_path / "a.json")
        p2 = write_bundle(load_bundle(p1), tmp_path / "b.json")
        assert p1.read_bytes() == p2.read_bytes()

    def test_unknown_format_version_rejected(self):
        doc = bundle_to_dict(_bundle())
        doc["format"] = "modchecker-evidence/99"
        with pytest.raises(ValueError, match="format"):
            bundle_from_dict(doc)


class TestRender:
    def test_report_names_the_crime(self):
        text = render_incident_report(_bundle())
        assert "TAMPER CONFIRMED" in text
        assert VICTIM in text
        assert ".text" in text
        assert "chk-000001" in text
        assert "check.verdict" in text          # correlated timeline
        assert "reference" in text.lower()

    def test_clean_bundle_renders_without_tamper_banner(self):
        # A degraded-but-not-tampered pool still yields a bundle; its
        # report must not claim tamper.
        tb = build_testbed(3, seed=42)
        mc = ModChecker(tb.hypervisor, tb.profile)
        parsed, *_ = mc.fetch_modules("hal.dll", tb.vm_names)
        report = mc.check_pool("hal.dll").report
        report.degraded = {"DomX": "unreachable: stopped"}
        bundle = capture_evidence(report, parsed)
        text = render_incident_report(bundle)
        assert "TAMPER CONFIRMED" not in text
        assert "DomX" in text


class TestRecorderFiles:
    def test_files_on_disk_load_back(self, tmp_path):
        attack, module = attack_for_experiment("E1")
        result = attack.apply(build_catalog(seed=42)[module])
        tb = build_testbed(4, seed=42,
                           infected={VICTIM: {module: result.infected}})
        rec = EvidenceRecorder(out_dir=tmp_path)
        mc = ModChecker(tb.hypervisor, tb.profile, evidence=rec)
        mc.check_pool(module)
        paths = sorted(tmp_path.iterdir())
        assert len(paths) == 1
        loaded = load_bundle(paths[0])
        assert loaded.flagged == [VICTIM]
        assert loaded.unexplained_hunks >= 1
