"""Unit tests for the contention scheduler (the Fig. 8 mechanism)."""

import pytest

from repro.hypervisor.scheduler import ContentionScheduler, CpuModel


@pytest.fixture
def sched():
    return ContentionScheduler(CpuModel())   # the paper's 4c/8t i7


class TestCpuModel:
    def test_paper_testbed_defaults(self):
        cpu = CpuModel()
        assert cpu.logical_cpus == 8
        assert cpu.physical_cores == 4

    def test_effective_cores_below_logical(self):
        cpu = CpuModel()
        assert cpu.physical_cores < cpu.effective_cores < cpu.logical_cpus


class TestSlowdown:
    def test_idle_guests_factor_one(self, sched):
        assert sched.dom0_slowdown(0.0) == pytest.approx(1.0)

    def test_factor_always_at_least_one(self, sched):
        for demand in (0.0, 1.0, 4.0, 7.0, 8.0, 20.0, 100.0):
            assert sched.dom0_slowdown(demand) >= 1.0

    def test_monotonic_in_demand(self, sched):
        factors = [sched.dom0_slowdown(d / 2) for d in range(0, 40)]
        assert all(b >= a for a, b in zip(factors, factors[1:]))

    def test_mild_below_saturation(self, sched):
        # With 6 busy guests + dom0 = 7 <= 8 logical CPUs, the slowdown
        # is interference-only (well under 2x).
        assert sched.dom0_slowdown(6.0) < 1.5

    def test_sharp_growth_past_saturation(self, sched):
        """The Fig. 8 'sudden nonlinear growth' property."""
        below = sched.dom0_slowdown(7.0)     # demand 8 == logical CPUs
        above = sched.dom0_slowdown(11.0)    # demand 12
        assert above / below > 1.5

    def test_oversubscribed_scales_with_demand(self, sched):
        a = sched.dom0_slowdown(15.0)
        b = sched.dom0_slowdown(31.0)
        assert b > 1.8 * a * 0.9              # roughly proportional

    def test_negative_demand_rejected(self, sched):
        with pytest.raises(ValueError):
            sched.dom0_slowdown(-1.0)


class TestDom0Threads:
    def test_more_threads_more_contention(self, sched):
        one = sched.dom0_slowdown(7.0, dom0_threads=1)
        four = sched.dom0_slowdown(7.0, dom0_threads=4)
        assert four > one

    def test_invalid_threads_rejected(self, sched):
        with pytest.raises(ValueError):
            sched.dom0_slowdown(1.0, dom0_threads=0)


class TestKnee:
    def test_knee_at_logical_cpus_for_full_load(self, sched):
        # 8 fully-loaded VMs + Dom0 = 9 > 8: saturation begins past 7.
        assert sched.knee_vm_count(1.0) == 8

    def test_knee_scales_with_per_vm_load(self, sched):
        assert sched.knee_vm_count(0.5) == 15

    def test_invalid_load_rejected(self, sched):
        with pytest.raises(ValueError):
            sched.knee_vm_count(0.0)
