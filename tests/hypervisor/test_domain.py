"""Unit tests for Domain records."""

import pytest

from repro.guest import GuestKernel
from repro.hypervisor.domain import Domain, DomainKind, DomainState


def _guest_domain(**kwargs):
    kernel = GuestKernel("g", seed=1)
    kernel.boot({})
    defaults = dict(domid=1, name="g", kind=DomainKind.DOMU, kernel=kernel)
    defaults.update(kwargs)
    return Domain(**defaults)


class TestConstruction:
    def test_domu_requires_kernel(self):
        with pytest.raises(ValueError, match="guest kernel"):
            Domain(domid=1, name="g", kind=DomainKind.DOMU)

    def test_dom0_needs_no_kernel(self):
        d = Domain(domid=0, name="Dom0", kind=DomainKind.DOM0)
        assert not d.is_guest

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            _guest_domain(cpu_load=1.5)


class TestScheduling:
    def test_runnable_vcpus(self):
        d = _guest_domain(vcpus=2)
        d.set_load(cpu=0.5)
        assert d.runnable_vcpus == 1.0

    def test_paused_domain_not_runnable(self):
        d = _guest_domain()
        d.set_load(cpu=1.0)
        d.state = DomainState.PAUSED
        assert d.runnable_vcpus == 0.0

    def test_set_load_validates(self):
        d = _guest_domain()
        with pytest.raises(ValueError):
            d.set_load(cpu=-0.1)

    def test_set_load_partial_update(self):
        d = _guest_domain()
        d.set_load(cpu=0.3)
        d.set_load(mem=0.7)
        assert d.cpu_load == 0.3 and d.mem_load == 0.7
