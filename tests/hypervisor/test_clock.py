"""Unit tests for the simulated clock."""

import pytest

from repro.hypervisor.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_zero_advance_allowed(self):
        clock = SimClock()
        clock.advance(0)
        assert clock.now == 0.0

    def test_span_measures_elapsed(self):
        clock = SimClock()
        with clock.span() as span:
            clock.advance(2.0)
            clock.advance(1.0)
        assert span.elapsed == pytest.approx(3.0)

    def test_nested_spans(self):
        clock = SimClock()
        with clock.span() as outer:
            clock.advance(1.0)
            with clock.span() as inner:
                clock.advance(2.0)
        assert inner.elapsed == pytest.approx(2.0)
        assert outer.elapsed == pytest.approx(3.0)
