"""Unit tests for write-protection traps (queue + hypervisor arming)."""

import pytest

from repro.errors import DomainUnreachable
from repro.hypervisor import TrapQueue
from repro.hypervisor.xen import Hypervisor
from repro.mem.physical import PAGE_SIZE


@pytest.fixture
def hv(catalog):
    hypervisor = Hypervisor()
    hypervisor.create_guest("Dom1", catalog, seed=1)
    return hypervisor


class TestTrapQueue:
    def test_push_then_drain(self):
        q = TrapQueue()
        assert q.push("vm", 7, 16, 1.0)
        assert q.pending("vm") == 1
        traps, overflowed = q.drain("vm")
        assert not overflowed
        (trap,) = traps
        assert (trap.vm, trap.gfn, trap.offset, trap.sim_time,
                trap.writes) == ("vm", 7, 16, 1.0, 1)
        assert q.pending("vm") == 0

    def test_drain_preserves_first_write_order(self):
        q = TrapQueue()
        for gfn in (9, 3, 5):
            q.push("vm", gfn, 0, 0.0)
        traps, _ = q.drain("vm")
        assert [t.gfn for t in traps] == [9, 3, 5]

    def test_coalescing_counts_writes_and_keeps_first_offset(self):
        q = TrapQueue()
        q.push("vm", 7, 16, 1.0)
        q.push("vm", 7, 99, 2.0)
        q.push("vm", 7, 0, 3.0)
        assert q.pending("vm") == 1
        (trap,), _ = q.drain("vm")
        assert trap.writes == 3
        assert trap.offset == 16 and trap.sim_time == 1.0
        assert q.stats.coalesced == 2

    def test_overflow_is_sticky_and_drops_new_frames(self):
        q = TrapQueue(capacity_per_vm=2)
        assert q.push("vm", 1, 0, 0.0)
        assert q.push("vm", 2, 0, 0.0)
        assert not q.push("vm", 3, 0, 0.0)       # new frame: dropped
        assert q.push("vm", 1, 8, 0.0)           # coalesce still works
        traps, overflowed = q.drain("vm")
        assert overflowed
        assert sorted(t.gfn for t in traps) == [1, 2]
        assert q.stats.dropped == 1 and q.stats.overflows == 1
        # drain resets the sticky flag
        q.push("vm", 4, 0, 0.0)
        _, overflowed = q.drain("vm")
        assert not overflowed

    def test_vms_are_isolated(self):
        q = TrapQueue(capacity_per_vm=1)
        assert q.push("a", 1, 0, 0.0)
        assert q.push("b", 1, 0, 0.0)            # b has its own capacity
        assert q.pending("a") == 1 and q.pending("b") == 1

    def test_purge_discards_pending_and_overflow(self):
        q = TrapQueue(capacity_per_vm=1)
        q.push("vm", 1, 0, 0.0)
        q.push("vm", 2, 0, 0.0)                  # overflow
        assert q.purge("vm") == 1
        traps, overflowed = q.drain("vm")
        assert traps == () and not overflowed

    def test_drain_unknown_vm(self):
        q = TrapQueue()
        assert q.drain("ghost") == ((), False)
        assert q.purge("ghost") == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            TrapQueue(capacity_per_vm=0)

    def test_stats_snapshot(self):
        q = TrapQueue()
        q.push("vm", 1, 0, 0.0)
        q.push("vm", 1, 4, 0.0)
        q.drain("vm")
        snap = q.stats.snapshot()
        assert snap["delivered"] == 2 and snap["coalesced"] == 1
        assert snap["drained"] == 1


class TestProtectGuestFrame:
    def test_write_to_protected_frame_traps(self, hv):
        assert hv.protect_guest_frame("Dom1", 5)
        kernel = hv.domain("Dom1").kernel
        kernel.memory.write(5 * PAGE_SIZE + 128, b"x")
        traps, overflowed = hv.traps.drain("Dom1")
        assert not overflowed
        (trap,) = traps
        assert trap.gfn == 5 and trap.offset == 128

    def test_write_to_unprotected_frame_is_silent(self, hv):
        hv.protect_guest_frame("Dom1", 5)
        kernel = hv.domain("Dom1").kernel
        kernel.memory.write(6 * PAGE_SIZE, b"x")
        assert hv.traps.pending("Dom1") == 0

    def test_straddling_write_traps_both_frames(self, hv):
        hv.protect_guest_frame("Dom1", 5)
        hv.protect_guest_frame("Dom1", 6)
        kernel = hv.domain("Dom1").kernel
        kernel.memory.write(6 * PAGE_SIZE - 2, b"abcd")
        traps, _ = hv.traps.drain("Dom1")
        assert sorted(t.gfn for t in traps) == [5, 6]

    def test_frame_view_traps_conservatively(self, hv):
        hv.protect_guest_frame("Dom1", 5)
        kernel = hv.domain("Dom1").kernel
        kernel.memory.frame_view(5)              # writable view handed out
        (trap,), _ = hv.traps.drain("Dom1")
        assert trap.gfn == 5 and trap.offset == 0

    def test_refcounted_protections_compose(self, hv):
        assert hv.protect_guest_frame("Dom1", 5)
        assert hv.protect_guest_frame("Dom1", 5)     # second monitor
        hv.unprotect_guest_frame("Dom1", 5)          # first releases
        kernel = hv.domain("Dom1").kernel
        kernel.memory.write(5 * PAGE_SIZE, b"x")
        assert hv.traps.pending("Dom1") == 1         # still armed
        hv.traps.drain("Dom1")
        hv.unprotect_guest_frame("Dom1", 5)          # last reference
        kernel.memory.write(5 * PAGE_SIZE, b"y")
        assert hv.traps.pending("Dom1") == 0

    def test_unprotect_is_forgiving(self, hv):
        hv.unprotect_guest_frame("Dom1", 5)          # never protected
        hv.unprotect_guest_frame("DomX", 5)          # no such domain

    def test_out_of_range_gfn_unprotectable(self, hv):
        n = hv.domain("Dom1").kernel.memory.n_frames
        assert not hv.protect_guest_frame("Dom1", n)
        assert not hv.protect_guest_frame("Dom1", -1)

    def test_protect_limit_refuses_new_frames(self, catalog):
        hv = Hypervisor(protect_limit=2)
        hv.create_guest("Dom1", catalog, seed=1)
        assert hv.protect_guest_frame("Dom1", 1)
        assert hv.protect_guest_frame("Dom1", 2)
        assert not hv.protect_guest_frame("Dom1", 3)
        assert hv.protect_guest_frame("Dom1", 1)     # refcount still fine

    def test_protect_mid_migration_unreachable(self, hv):
        hv.migrate_start("Dom1")
        with pytest.raises(DomainUnreachable):
            hv.protect_guest_frame("Dom1", 5)


class TestLifecycleDrops:
    def _arm(self, hv):
        hv.protect_guest_frame("Dom1", 5)
        hv.domain("Dom1").kernel.memory.write(5 * PAGE_SIZE, b"x")
        assert hv.traps.pending("Dom1") == 1

    def test_reboot_drops_protections_and_bumps_epoch(self, hv):
        self._arm(hv)
        epoch = hv.domain("Dom1").protection_epoch
        hv.reboot("Dom1")
        domain = hv.domain("Dom1")
        assert domain.protected_frames == {}
        assert domain.protection_epoch == epoch + 1
        assert hv.traps.pending("Dom1") == 0
        # old observer is orphaned: writes to the new memory stay silent
        domain.kernel.memory.write(5 * PAGE_SIZE, b"y")
        assert hv.traps.pending("Dom1") == 0

    def test_migrate_finish_drops_protections(self, hv):
        self._arm(hv)
        hv.migrate_start("Dom1")
        hv.migrate_finish("Dom1")
        assert hv.domain("Dom1").protected_frames == {}
        assert hv.traps.pending("Dom1") == 0

    def test_destroy_purges_traps(self, hv):
        self._arm(hv)
        hv.destroy("Dom1")
        assert hv.traps.pending("Dom1") == 0

    def test_revert_floods_protected_frames(self, hv):
        hv.snapshot("Dom1")
        hv.protect_guest_frame("Dom1", 3)
        hv.protect_guest_frame("Dom1", 9)
        hv.revert("Dom1")
        traps, _ = hv.traps.drain("Dom1")
        assert sorted(t.gfn for t in traps) == [3, 9]


class TestChecksumLength:
    def test_short_length_masks_tail(self, hv):
        kernel = hv.domain("Dom1").kernel
        kernel.memory.write(5 * PAGE_SIZE, b"A" * PAGE_SIZE)
        before = hv.checksum_guest_frame("Dom1", 5, length=100)
        # mutate beyond the masked prefix: digest must not move
        kernel.memory.write(5 * PAGE_SIZE + 100, b"Z" * 16)
        assert hv.checksum_guest_frame("Dom1", 5, length=100) == before
        # mutate inside the prefix: digest must move
        kernel.memory.write(5 * PAGE_SIZE + 10, b"Z")
        assert hv.checksum_guest_frame("Dom1", 5, length=100) != before

    def test_full_length_is_default(self, hv):
        a = hv.checksum_guest_frame("Dom1", 5)
        b = hv.checksum_guest_frame("Dom1", 5, length=PAGE_SIZE)
        assert a == b

    def test_invalid_length_rejected(self, hv):
        with pytest.raises(ValueError):
            hv.checksum_guest_frame("Dom1", 5, length=0)
        with pytest.raises(ValueError):
            hv.checksum_guest_frame("Dom1", 5, length=PAGE_SIZE + 1)
