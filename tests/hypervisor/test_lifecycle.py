"""Lifecycle state machine: reboot, pause, migrate, destroy — and the
unified read-path semantics the checker depends on (a PAUSED guest
reads fine; MIGRATING/SHUTDOWN/destroyed raise DomainUnreachable, never
a raw lookup error)."""

import pytest

from repro.errors import DomainStateError, DomainUnreachable
from repro.hypervisor.domain import DomainState
from repro.hypervisor.xen import Hypervisor


@pytest.fixture
def hv(catalog):
    hypervisor = Hypervisor()
    hypervisor.create_guest("Dom1", catalog, seed=1)
    hypervisor.create_guest("Dom2", catalog, seed=2)
    return hypervisor


def _some_frame(hv, name):
    kernel = hv.domain(name).kernel
    return next(iter(kernel.memory._frames))


class TestReboot:
    def test_reboot_reloads_modules_at_fresh_bases(self, hv, catalog):
        kernel = hv.domain("Dom1").kernel
        before = {name: mod.base for name, mod in kernel.modules.items()}
        hv.reboot("Dom1")
        after = {name: mod.base for name, mod in kernel.modules.items()}
        assert set(after) == set(before) == set(catalog)
        assert after != before          # ASLR-style fresh layout

    def test_reboot_bumps_boot_generation(self, hv):
        domain = hv.domain("Dom1")
        gen = domain.boot_generation
        hv.reboot("Dom1")
        assert domain.boot_generation == gen + 1
        hv.reboot("Dom1")
        assert domain.boot_generation == gen + 2

    def test_reboot_is_deterministic(self, catalog):
        def boot_and_cycle():
            hv = Hypervisor()
            hv.create_guest("Dom1", catalog, seed=9)
            hv.reboot("Dom1")
            kernel = hv.domain("Dom1").kernel
            return {name: mod.base for name, mod in kernel.modules.items()}

        assert boot_and_cycle() == boot_and_cycle()

    def test_reboot_reloads_from_unchanged_disk(self, hv, catalog):
        # Reboot rebuilds memory from the guest's own disk: the files
        # stay byte-identical and the LDR list is fully relinked (the
        # in-memory images legitimately differ — relocations are
        # re-applied for the fresh bases).
        kernel = hv.domain("Dom1").kernel
        files_before = dict(kernel.fs._files)
        hv.reboot("Dom1")
        assert kernel.fs._files == files_before
        assert kernel.list_entry_count() == len(catalog)

    def test_paused_guest_reboots_to_running(self, hv):
        hv.pause("Dom1")
        hv.reboot("Dom1")
        assert hv.domain("Dom1").state is DomainState.RUNNING

    def test_migrating_guest_cannot_reboot(self, hv):
        hv.migrate_start("Dom1")
        with pytest.raises(DomainStateError, match="mid-migration"):
            hv.reboot("Dom1")

    def test_dom0_cannot_reboot(self, hv):
        with pytest.raises(DomainStateError):
            hv.reboot("Dom0")


class TestReadPathSemantics:
    """Satellite regression: every guest-read primitive shares one
    reachability rule."""

    def test_paused_domain_reads_succeed(self, hv):
        frame_no = _some_frame(hv, "Dom1")
        before = hv.read_guest_frame("Dom1", frame_no)
        hv.pause("Dom1")
        assert hv.read_guest_frame("Dom1", frame_no) == before
        assert hv.read_guest_physical("Dom1", frame_no * 4096, 64) \
            == before[:64]

    def test_migrating_domain_unreachable(self, hv):
        hv.migrate_start("Dom1")
        frame_no = 0
        with pytest.raises(DomainUnreachable, match="migrating"):
            hv.read_guest_frame("Dom1", frame_no)
        with pytest.raises(DomainUnreachable, match="migrating"):
            hv.read_guest_physical("Dom1", 0, 16)

    def test_destroyed_domain_unreachable_not_keyerror(self, hv):
        hv.destroy("Dom1")
        with pytest.raises(DomainUnreachable, match="destroyed"):
            hv.read_guest_frame("Dom1", 0)
        with pytest.raises(DomainUnreachable, match="destroyed"):
            hv.read_guest_physical("Dom1", 0, 16)

    def test_migrate_finish_restores_reads(self, hv):
        frame_no = _some_frame(hv, "Dom1")
        before = hv.read_guest_frame("Dom1", frame_no)
        hv.migrate_start("Dom1")
        hv.migrate_finish("Dom1")
        assert hv.read_guest_frame("Dom1", frame_no) == before

    def test_introspectable_property(self, hv):
        domain = hv.domain("Dom1")
        assert domain.introspectable
        hv.pause("Dom1")
        assert domain.introspectable          # frozen snapshot reads fine
        hv.unpause("Dom1")
        hv.migrate_start("Dom1")
        assert not domain.introspectable
        hv.migrate_finish("Dom1")
        hv.destroy("Dom1")
        assert not domain.introspectable


class TestStateGuards:
    def test_pause_during_migration_rejected(self, hv):
        hv.migrate_start("Dom1")
        with pytest.raises(DomainStateError, match="mid-migration"):
            hv.pause("Dom1")

    def test_migrate_requires_running(self, hv):
        hv.pause("Dom1")
        with pytest.raises(DomainStateError, match="only a running"):
            hv.migrate_start("Dom1")

    def test_migrate_finish_requires_migrating(self, hv):
        with pytest.raises(DomainStateError, match="not migrating"):
            hv.migrate_finish("Dom1")
