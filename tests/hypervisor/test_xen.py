"""Unit tests for the hypervisor."""

import pytest

from repro.errors import DomainNotFound, DomainStateError
from repro.hypervisor.xen import Hypervisor


@pytest.fixture
def hv(catalog):
    hypervisor = Hypervisor()
    hypervisor.create_guest("Dom1", catalog, seed=1)
    hypervisor.create_guest("Dom2", catalog, seed=2)
    return hypervisor


class TestLifecycle:
    def test_dom0_exists(self, hv):
        assert hv.domain("Dom0").name == "Dom0"
        assert hv.domain(0).name == "Dom0"

    def test_guests_listed_in_order(self, hv):
        assert [d.name for d in hv.guests()] == ["Dom1", "Dom2"]

    def test_duplicate_name_rejected(self, hv, catalog):
        with pytest.raises(DomainStateError, match="already exists"):
            hv.create_guest("Dom1", catalog)

    def test_unknown_domain(self, hv):
        with pytest.raises(DomainNotFound):
            hv.domain("DomX")
        with pytest.raises(DomainNotFound):
            hv.domain(99)

    def test_pause_unpause(self, hv):
        hv.pause("Dom1")
        assert hv.domain("Dom1").runnable_vcpus == 0.0
        hv.unpause("Dom1")

    def test_destroy(self, hv):
        hv.destroy("Dom2")
        with pytest.raises(DomainNotFound):
            hv.domain("Dom2")

    def test_destroy_dom0_rejected(self, hv):
        with pytest.raises(DomainStateError):
            hv.destroy("Dom0")


class TestIntrospectionSurface:
    def test_guest_cr3(self, hv):
        cr3 = hv.guest_cr3("Dom1")
        assert cr3 == hv.domain("Dom1").kernel.cr3

    def test_dom0_has_no_cr3(self, hv):
        with pytest.raises(DomainStateError):
            hv.guest_cr3("Dom0")

    def test_read_guest_frame_matches_guest_memory(self, hv):
        kernel = hv.domain("Dom1").kernel
        kernel.memory.write(5 * 4096 + 8, b"evidence")
        frame = hv.read_guest_frame("Dom1", 5)
        assert frame[8:16] == b"evidence"
        assert len(frame) == 4096

    def test_read_guest_physical(self, hv):
        kernel = hv.domain("Dom1").kernel
        kernel.memory.write(0x1234, b"\xAA\xBB")
        assert hv.read_guest_physical("Dom1", 0x1234, 2) == b"\xAA\xBB"

    def test_cannot_introspect_dom0(self, hv):
        with pytest.raises(DomainStateError):
            hv.read_guest_frame("Dom0", 0)


class TestCpuAccounting:
    def test_charge_advances_clock(self, hv):
        t0 = hv.clock.now
        hv.charge_dom0(0.5)
        assert hv.clock.now > t0

    def test_idle_guests_no_stretch(self, hv):
        elapsed = hv.charge_dom0(1.0)
        assert elapsed == pytest.approx(1.0)

    def test_loaded_guests_stretch(self, hv):
        for name in ("Dom1", "Dom2"):
            hv.domain(name).set_load(cpu=1.0)
        elapsed = hv.charge_dom0(1.0)
        assert elapsed > 1.0

    def test_guest_demand_sums(self, hv):
        hv.domain("Dom1").set_load(cpu=0.5)
        hv.domain("Dom2").set_load(cpu=1.0)
        assert hv.guest_demand() == pytest.approx(1.5)

    def test_negative_charge_rejected(self, hv):
        with pytest.raises(ValueError):
            hv.charge_dom0(-0.1)

    def test_cpu_seconds_accumulate(self, hv):
        hv.charge_dom0(0.25)
        hv.charge_dom0(0.25)
        assert hv.dom0_cpu_seconds == pytest.approx(0.5)


class TestDeferredCharges:
    def test_collects_without_advancing(self, hv):
        t0 = hv.clock.now
        with hv.deferred_charges() as acc:
            hv.charge_dom0(1.0)
            hv.charge_dom0(2.0)
        assert acc.total == pytest.approx(3.0)
        assert hv.clock.now == t0

    def test_restores_normal_charging(self, hv):
        with hv.deferred_charges():
            hv.charge_dom0(1.0)
        t0 = hv.clock.now
        hv.charge_dom0(1.0)
        assert hv.clock.now > t0

    def test_cpu_seconds_still_counted(self, hv):
        before = hv.dom0_cpu_seconds
        with hv.deferred_charges():
            hv.charge_dom0(2.0)
        assert hv.dom0_cpu_seconds == pytest.approx(before + 2.0)

    def test_nested_contexts_restore_outer(self, hv):
        # Regression: the inner context used to `del` the shadowing
        # attribute on exit, so the *outer* accumulator stopped
        # collecting and charges leaked straight to the clock.
        t0 = hv.clock.now
        with hv.deferred_charges() as outer:
            hv.charge_dom0(1.0)
            with hv.deferred_charges() as inner:
                hv.charge_dom0(2.0)
            assert inner.total == pytest.approx(2.0)
            hv.charge_dom0(4.0)  # must still be deferred by `outer`
            assert hv.clock.now == t0
        assert outer.total == pytest.approx(5.0)
        assert hv.clock.now == t0

    def test_nested_inner_totals_do_not_double_count(self, hv):
        with hv.deferred_charges() as outer:
            with hv.deferred_charges() as inner:
                hv.charge_dom0(3.0)
        assert inner.total == pytest.approx(3.0)
        assert outer.total == pytest.approx(0.0)

    def test_triply_nested_unwinds_in_order(self, hv):
        t0 = hv.clock.now
        with hv.deferred_charges() as a:
            with hv.deferred_charges():
                with hv.deferred_charges():
                    hv.charge_dom0(1.0)
                hv.charge_dom0(1.0)
            hv.charge_dom0(1.0)
        assert a.total == pytest.approx(1.0)
        assert hv.clock.now == t0
        hv.charge_dom0(0.5)  # normal charging restored
        assert hv.clock.now > t0


class TestSnapshots:
    def test_snapshot_revert_restores_memory(self, hv):
        kernel = hv.domain("Dom1").kernel
        hv.snapshot("Dom1")
        before = kernel.read_module_image("hal.dll")
        base = kernel.module("hal.dll").base
        kernel.aspace.write(base + 0x1000, b"INFECTED")
        assert kernel.read_module_image("hal.dll") != before
        hv.revert("Dom1")
        assert kernel.read_module_image("hal.dll") == before

    def test_revert_without_snapshot_rejected(self, hv):
        with pytest.raises(DomainStateError, match="no snapshot"):
            hv.revert("Dom1")

    def test_snapshot_dom0_rejected(self, hv):
        with pytest.raises(DomainStateError):
            hv.snapshot("Dom0")
