"""Profiler tests: call-tree math, attribution, exports, pipeline runs."""

from __future__ import annotations

from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.hypervisor.clock import SimClock
from repro.obs import NULL_OBS, NULL_TRACER, Profile, Tracer, make_observability

SEED = 2012


def _nested_tracer() -> Tracer:
    """daemon.cycle{1.0s} > check{0.6s} > fetch{0.4s}; two cycles."""
    clock = SimClock()
    tracer = Tracer(clock)
    for _ in range(2):
        with tracer.span("daemon.cycle"):
            clock.advance(0.4)                    # exclusive in cycle
            with tracer.span("modchecker.check", module="hal.dll"):
                clock.advance(0.2)                # exclusive in check
                with tracer.span("modchecker.fetch", vm="Dom1"):
                    tracer.charge("page_copy", 0.05)
                    clock.advance(0.4)
    return tracer


class TestCallTree:
    def test_inclusive_exclusive_and_calls(self):
        profile = Profile.from_tracer(_nested_tracer())
        root = profile.roots["daemon.cycle"]
        assert root.calls == 2
        assert abs(root.inclusive - 2.0) < 1e-12
        assert abs(root.exclusive - 0.8) < 1e-12
        check = root.children["modchecker.check"]
        assert abs(check.inclusive - 1.2) < 1e-12
        assert abs(check.exclusive - 0.4) < 1e-12
        fetch = check.children["modchecker.fetch"]
        assert abs(fetch.inclusive - 0.8) < 1e-12
        assert fetch.exclusive == fetch.inclusive   # leaf

    def test_exclusive_sums_exactly_to_root_inclusive(self):
        profile = Profile.from_tracer(_nested_tracer())
        total_exclusive = sum(n.exclusive for n in profile.nodes())
        assert abs(total_exclusive - profile.total_seconds) < 1e-12

    def test_paths_join_with_semicolons(self):
        profile = Profile.from_tracer(_nested_tracer())
        paths = {n.path for n in profile.nodes()}
        assert ("daemon.cycle;modchecker.check;modchecker.fetch"
                in paths)

    def test_stage_shares_sum_to_one(self):
        profile = Profile.from_tracer(_nested_tracer())
        assert abs(sum(profile.stage_shares().values()) - 1.0) < 1e-12


class TestChargeAttribution:
    def test_charge_lands_on_innermost_span_node(self):
        profile = Profile.from_tracer(_nested_tracer())
        fetch = (profile.roots["daemon.cycle"]
                 .children["modchecker.check"]
                 .children["modchecker.fetch"])
        assert abs(fetch.op_cpu["page_copy"] - 0.1) < 1e-12
        assert fetch.op_calls["page_copy"] == 2

    def test_vm_and_module_resolved_from_ancestry(self):
        profile = Profile.from_tracer(_nested_tracer())
        # vm comes from the fetch span, module from the check ancestor
        assert ("Dom1", "hal.dll", "page_copy") in profile.attribution
        cpu, calls = profile.attribution[("Dom1", "hal.dll", "page_copy")]
        assert abs(cpu - 0.1) < 1e-12 and calls == 2

    def test_charge_outside_any_span_is_unattributed(self):
        tracer = Tracer(SimClock())
        tracer.charge("small_read", 0.01)
        profile = Profile.from_tracer(tracer)
        assert profile.unattributed_cpu == 0.01
        assert profile.total_cpu_seconds == 0.01

    def test_cpu_by_op_and_shares(self):
        profile = Profile.from_tracer(_nested_tracer())
        assert abs(profile.cpu_by_op()["page_copy"] - 0.1) < 1e-12
        assert profile.op_shares() == {"page_copy": 1.0}


class TestExports:
    def test_collapsed_lines_are_path_and_integer_micros(self):
        text = Profile.from_tracer(_nested_tracer()).collapsed()
        lines = text.strip().splitlines()
        assert lines
        for line in lines:
            path, micros = line.rsplit(" ", 1)
            assert int(micros) > 0
        assert any(line.startswith("daemon.cycle ") for line in lines)

    def test_collapsed_cpu_weight_survives_zero_durations(self):
        # frozen clock: every span duration is zero, charges are not
        tracer = Tracer(SimClock())
        with tracer.span("modchecker.fetch", vm="Dom1"):
            tracer.charge("page_copy", 0.002)
        profile = Profile.from_tracer(tracer)
        assert profile.collapsed(weight="time") == ""
        assert profile.collapsed(weight="cpu") == \
            "modchecker.fetch 2000\n"

    def test_hotspots_ranked_and_share_normalised(self):
        profile = Profile.from_tracer(_nested_tracer())
        spots = profile.hotspots(3)
        assert spots[0]["exclusive"] >= spots[-1]["exclusive"]
        assert abs(sum(s["share"] for s in
                       profile.hotspots(100)) - 1.0) < 1e-12

    def test_json_document_format_and_scenario(self, tmp_path):
        import json
        profile = Profile.from_tracer(_nested_tracer())
        path = profile.write_json(tmp_path / "p.json",
                                  scenario="substrate")
        doc = json.loads(path.read_text())
        assert doc["format"] == "modchecker-profile/1"
        assert doc["scenario"] == "substrate"
        assert set(doc["stage_shares"]) == {
            "daemon.cycle", "modchecker.check", "modchecker.fetch"}
        assert doc["attribution"][0]["vm"] == "Dom1"

    def test_bad_weight_rejected(self):
        profile = Profile.from_tracer(_nested_tracer())
        for method in (profile.collapsed, profile.hotspots):
            try:
                method(weight="wall")
            except ValueError:
                continue
            raise AssertionError("weight='wall' accepted")


class TestPipelineProfile:
    """The acceptance criterion: a real traced run reconciles."""

    def test_shares_reconcile_with_tracer_within_1_percent(self):
        tb = build_testbed(3, seed=SEED)
        obs = make_observability(tb.clock)
        mc = ModChecker(tb.hypervisor, tb.profile, obs=obs)
        mc.check_pool("hal.dll")
        profile = Profile.from_tracer(obs.tracer)
        total_exclusive = sum(n.exclusive for n in profile.nodes())
        root_total = profile.total_seconds
        assert root_total > 0
        assert abs(total_exclusive - root_total) / root_total < 0.01
        # the compare stage has no sub-spans: its exclusive time must
        # equal the tracer's own stage sum for the same name
        by_name = obs.tracer.total_by_name()
        excl = profile.exclusive_by_name()
        assert abs(excl["checker.compare"] - by_name["checker.compare"]) \
            <= 0.01 * by_name["checker.compare"]

    def test_acquisition_copy_path_is_top_hotspot(self):
        tb = build_testbed(3, seed=SEED)
        obs = make_observability(tb.clock)
        mc = ModChecker(tb.hypervisor, tb.profile, obs=obs)
        mc.check_pool("ntoskrnl.exe")
        top = Profile.from_tracer(obs.tracer).hotspots(1)[0]
        assert "searcher.copy" in top["path"]
        assert top["path"].endswith("vmi.read_page")

    def test_charge_totals_match_tracer_totals(self):
        tb = build_testbed(3, seed=SEED)
        obs = make_observability(tb.clock)
        mc = ModChecker(tb.hypervisor, tb.profile, obs=obs)
        mc.check_pool("hal.dll")
        profile = Profile.from_tracer(obs.tracer)
        by_op = obs.tracer.total_by_op()
        assert by_op["page_copy"] > 0
        for op, cpu in profile.cpu_by_op().items():
            assert abs(cpu - by_op[op]) < 1e-12
        attributed = sum(cpu for cpu, _ in profile.attribution.values())
        assert abs(attributed + profile.unattributed_cpu
                   - sum(by_op.values())) < 1e-12


class TestDisabledPath:
    def test_null_tracer_profiles_empty(self):
        profile = Profile.from_tracer(NULL_TRACER)
        assert not profile.roots
        assert profile.total_seconds == 0.0
        assert profile.collapsed() == ""
        assert profile.hotspots() == []

    def test_disabled_pipeline_records_no_charges(self):
        tb = build_testbed(3, seed=SEED)
        mc = ModChecker(tb.hypervisor, tb.profile, obs=NULL_OBS)
        mc.check_pool("hal.dll")
        assert NULL_OBS.tracer.charges == []

    def test_unknown_charge_op_rejected(self):
        tracer = Tracer(SimClock())
        try:
            tracer.charge("page_fax", 1.0)
        except ValueError as exc:
            assert "closed" in str(exc)
        else:
            raise AssertionError("unknown op accepted")
