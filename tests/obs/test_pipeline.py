"""End-to-end observability: the instrumented VMI -> checker pipeline.

The acceptance bar for the obs subsystem: spans nest like the pipeline
call tree, the Prometheus per-stage totals reconcile with the cost-model
timing breakdown within 1%, and the fault/degradation story shows up in
the metrics exactly as the reports tell it.
"""

from __future__ import annotations

import json

from repro.cloud import build_testbed
from repro.core import CheckDaemon, ModChecker
from repro.core.daemon import RoundRobinPolicy
from repro.core.parallel import ParallelModChecker
from repro.hypervisor import FaultConfig, FaultInjector
from repro.obs import make_observability
from repro.vmi.retry import RetryPolicy

SEED = 42

#: guaranteed retry exhaustion on the targeted domain
SICK = dict(unreachable_rate=1.0, unreachable_duration=10.0)


def _checked_testbed(n_vms=4, **kwargs):
    tb = build_testbed(n_vms, seed=SEED)
    obs = make_observability(tb.clock)
    mc = ModChecker(tb.hypervisor, tb.profile, obs=obs, **kwargs)
    return tb, obs, mc


class TestSpansNestLikeThePipeline:
    def test_check_pool_span_tree(self):
        tb, obs, mc = _checked_testbed()
        mc.check_pool("hal.dll")
        tracer = obs.tracer
        (root,) = tracer.roots()
        assert root.name == "modchecker.check"
        kids = {s.name for s in tracer.children_of(root)}
        assert kids == {"modchecker.fetch", "checker.compare"}
        fetch = next(s for s in tracer.children_of(root)
                     if s.name == "modchecker.fetch")
        fetch_kids = [s.name for s in tracer.children_of(fetch)]
        assert fetch_kids.count("searcher.copy") == 4
        assert fetch_kids.count("parser.parse") == 4
        copy = next(s for s in tracer.children_of(fetch)
                    if s.name == "searcher.copy")
        walk_kids = {s.name for s in tracer.children_of(copy)}
        assert "searcher.walk" in walk_kids

    def test_every_span_fits_in_its_parent(self):
        tb, obs, mc = _checked_testbed()
        mc.check_pool("hal.dll")
        by_id = {s.span_id: s for s in obs.tracer.spans}
        for span in obs.tracer.finished_spans():
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert parent.start <= span.start
            assert span.end <= parent.end + 1e-12

    def test_spans_carry_vm_and_module_attrs(self):
        tb, obs, mc = _checked_testbed()
        mc.check_pool("hal.dll")
        copies = [s for s in obs.tracer.spans if s.name == "searcher.copy"]
        assert {s.attrs["vm"] for s in copies} == \
            {"Dom1", "Dom2", "Dom3", "Dom4"}
        assert all(s.attrs["module"] == "hal.dll" for s in copies)
        assert all(s.attrs["bytes"] > 0 for s in copies)


class TestStageReconciliation:
    def test_prometheus_stage_sums_match_timings_within_1pct(self):
        tb, obs, mc = _checked_testbed()
        out = mc.check_pool("hal.dll")
        hist = obs.metrics.histogram("modchecker_stage_seconds")
        for stage in ("searcher", "parser", "checker"):
            expected = getattr(out.timings, stage)
            got = hist.sum(stage=stage)
            assert expected > 0
            assert abs(got - expected) <= 0.01 * expected, (
                f"{stage}: metrics say {got}, timings say {expected}")

    def test_stage_sums_accumulate_over_rounds(self):
        tb, obs, mc = _checked_testbed()
        total = 0.0
        for _ in range(3):
            total += mc.check_pool("hal.dll").timings.searcher
        hist = obs.metrics.histogram("modchecker_stage_seconds")
        assert abs(hist.sum(stage="searcher") - total) <= 0.01 * total
        assert hist.count(stage="searcher") == 3

    def test_check_span_duration_covers_stage_total(self):
        tb, obs, mc = _checked_testbed()
        out = mc.check_pool("hal.dll")
        (root,) = obs.tracer.roots()
        # the end-to-end span contains all three stages (plus rounding)
        assert root.duration >= out.timings.total * 0.99

    def test_parallel_checker_records_wall_breakdown(self):
        tb = build_testbed(4, seed=SEED)
        obs = make_observability(tb.clock)
        mc = ParallelModChecker(tb.hypervisor, tb.profile, threads=2,
                                obs=obs)
        out = mc.check_pool("hal.dll")
        hist = obs.metrics.histogram("modchecker_stage_seconds")
        for stage in ("searcher", "parser", "checker"):
            expected = getattr(out.timings, stage)
            assert abs(hist.sum(stage=stage) - expected) \
                <= 0.01 * max(expected, 1e-12)
        (root,) = obs.tracer.roots()
        assert root.name == "modchecker.check"
        assert root.attrs["mode"] == "parallel-pairwise"


class TestVerdictAndVmiMetrics:
    def test_clean_pool_verdict_counter(self):
        tb, obs, mc = _checked_testbed()
        mc.check_pool("hal.dll")
        checks = obs.metrics.counter("modchecker_checks_total")
        assert checks.value(module="hal.dll", verdict="clean") == 1
        assert obs.metrics.gauge("modchecker_quorum_size").value(
            module="hal.dll") == 4

    def test_vmi_counters_published_per_vm(self):
        tb, obs, mc = _checked_testbed()
        mc.check_pool("hal.dll")
        pages = obs.metrics.counter("modchecker_vmi_pages_mapped_total")
        for vm in ("Dom1", "Dom2", "Dom3", "Dom4"):
            assert pages.value(vm=vm) == mc.vmi_for(vm).stats.pages_mapped
            assert pages.value(vm=vm) > 0

    def test_cache_hit_ratio_gauge_tracks_lru(self):
        tb, obs, mc = _checked_testbed(flush_caches_each_round=False)
        mc.check_pool("hal.dll")
        mc.check_pool("hal.dll")       # second round hits the caches
        ratio = obs.metrics.gauge("modchecker_cache_hit_ratio")
        vmi = mc.vmi_for("Dom1")
        assert ratio.value(vm="Dom1", cache="page") == \
            vmi.page_cache.hit_rate
        assert ratio.value(vm="Dom1", cache="page") > 0.0


class TestFaultMetrics:
    def test_injected_faults_and_recovered_retries(self):
        tb = build_testbed(4, seed=SEED)
        obs = make_observability(tb.clock)
        mc = ModChecker(tb.hypervisor, tb.profile, obs=obs,
                        retry=RetryPolicy(max_attempts=8))
        injector = FaultInjector(FaultConfig(transient_rate=0.02),
                                 seed=SEED)
        with injector.installed(tb.hypervisor):
            out = mc.check_pool("hal.dll")
        assert out.report.all_clean
        injected = obs.metrics.counter("modchecker_faults_injected_total")
        assert injected.value(kind="transient") == injector.stats.transient
        assert injected.value(kind="transient") > 0
        recovered = obs.metrics.counter(
            "modchecker_vmi_retries_recovered_total")
        total_recovered = sum(
            mc.vmi_for(vm).stats.retries_recovered
            for vm in ("Dom1", "Dom2", "Dom3", "Dom4"))
        assert total_recovered > 0
        assert sum(recovered.value(vm=vm)
                   for vm in ("Dom1", "Dom2", "Dom3", "Dom4")) == \
            total_recovered

    def test_degraded_vm_shows_in_quorum_and_votes(self):
        tb = build_testbed(4, seed=SEED)
        obs = make_observability(tb.clock)
        mc = ModChecker(tb.hypervisor, tb.profile, obs=obs)
        injector = FaultInjector(
            FaultConfig(only_domains=("Dom2",), **SICK), seed=SEED)
        with injector.installed(tb.hypervisor):
            out = mc.check_pool("hal.dll")
        assert set(out.report.degraded) == {"Dom2"}
        assert obs.metrics.gauge("modchecker_quorum_size").value(
            module="hal.dll") == 3
        degraded = obs.metrics.counter("modchecker_degraded_votes_total")
        assert degraded.value(vm="Dom2", category="retry-exhausted") == 1


class TestDaemonMetrics:
    def test_cycle_histogram_and_quarantine_gauge(self):
        tb = build_testbed(4, seed=SEED)
        obs = make_observability(tb.clock)
        mc = ModChecker(tb.hypervisor, tb.profile, obs=obs)
        daemon = CheckDaemon(mc, RoundRobinPolicy(per_cycle=2),
                             interval=30.0, carve=False)
        daemon.run(3)
        cycles = obs.metrics.histogram("modchecker_daemon_cycle_seconds")
        assert cycles.count() == 3
        assert cycles.sum() > 0        # checking costs simulated time
        assert obs.metrics.gauge("modchecker_daemon_quarantined") \
            .value() == 0
        spans = [s for s in obs.tracer.spans if s.name == "daemon.cycle"]
        assert len(spans) == 3
        assert [s.attrs["cycle"] for s in spans] == [0, 1, 2]

    def test_quarantine_alert_counted(self):
        tb = build_testbed(4, seed=SEED)
        obs = make_observability(tb.clock)
        mc = ModChecker(tb.hypervisor, tb.profile, obs=obs)
        daemon = CheckDaemon(mc, RoundRobinPolicy(per_cycle=1),
                             interval=30.0, carve=False)
        injector = FaultInjector(
            FaultConfig(only_domains=("Dom3",), **SICK), seed=SEED)
        with injector.installed(tb.hypervisor):
            daemon.run_cycle()
        alerts = obs.metrics.counter("modchecker_daemon_alerts_total")
        assert alerts.value(kind="degraded") >= 1
        assert obs.metrics.gauge("modchecker_daemon_quarantined") \
            .value() == 1


class TestCliIntegration:
    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        from repro.cli import main
        trace_path = tmp_path / "t.json"
        prom_path = tmp_path / "m.prom"
        rc = main(["check", "--module", "hal.dll", "--vms", "4",
                   "--trace-out", str(trace_path),
                   "--metrics-out", str(prom_path)])
        assert rc == 0
        doc = json.load(open(trace_path))
        events = doc["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        by_id = {e["args"]["span_id"]: e for e in events}
        for e in events:
            pid = e["args"].get("parent_id")
            if pid is not None:
                p = by_id[pid]
                assert p["ts"] <= e["ts"]
                assert e["ts"] + e["dur"] <= p["ts"] + p["dur"] + 1e-6
        text = prom_path.read_text()
        assert "# TYPE modchecker_stage_seconds histogram" in text
        assert 'modchecker_stage_seconds_sum{stage="searcher"}' in text

    def test_metrics_json_suffix_writes_snapshot(self, tmp_path):
        from repro.cli import main
        out = tmp_path / "m.json"
        rc = main(["check", "--module", "hal.dll", "--vms", "3",
                   "--metrics-out", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["modchecker_checks_total"]["type"] == "counter"

    def test_cli_stage_sums_reconcile_with_breakdown(self, tmp_path):
        """The acceptance criterion: CLI metrics vs cost-model timings."""
        from repro.cli import main
        out = tmp_path / "m.json"
        rc = main(["check", "--module", "hal.dll", "--vms", "4",
                   "--metrics-out", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        stage_sums = {s["labels"]["stage"]: s["sum"]
                      for s in data["modchecker_stage_seconds"]["samples"]}
        # replay the same seeded check without obs: identical simulation
        tb = build_testbed(4, seed=2012)
        mc = ModChecker(tb.hypervisor, tb.profile)
        timings = mc.check_pool("hal.dll").timings
        for stage in ("searcher", "parser", "checker"):
            expected = getattr(timings, stage)
            assert abs(stage_sums[stage] - expected) <= 0.01 * expected
