"""EventLog unit tests: vocabulary, correlation, retention, sink."""

from __future__ import annotations

import json

import pytest

from repro.hypervisor.clock import SimClock
from repro.obs import EVENT_NAMES, NULL_EVENTS, EventLog


def _log(**kwargs) -> tuple[SimClock, EventLog]:
    clock = SimClock()
    return clock, EventLog(clock, **kwargs)


class TestVocabulary:
    def test_every_name_in_vocabulary_emits(self):
        _, log = _log()
        for name in EVENT_NAMES:
            log.emit(name)
        assert len(log) == len(EVENT_NAMES)

    def test_unknown_name_rejected(self):
        _, log = _log()
        with pytest.raises(ValueError, match="closed"):
            log.emit("check.shenanigans")

    def test_vocabulary_is_dotted_and_sorted_categories(self):
        for name in EVENT_NAMES:
            category, _, rest = name.partition(".")
            assert category and rest, name


class TestCorrelation:
    def test_check_ids_are_sequential(self):
        _, log = _log()
        assert log.new_check_id() == "chk-000001"
        assert log.new_check_id() == "chk-000002"

    def test_emit_inherits_innermost_correlation(self):
        _, log = _log()
        outer, inner = log.new_check_id(), log.new_check_id()
        with log.correlate(outer):
            log.emit("daemon.cycle")
            with log.correlate(inner):
                log.emit("check.start")
            log.emit("check.verdict")
        log.emit("alert.raised")
        ids = [e.check_id for e in log.events]
        assert ids == [outer, inner, outer, None]

    def test_explicit_check_id_overrides_context(self):
        _, log = _log()
        with log.correlate("chk-000009"):
            e = log.emit("alert.raised", check_id="chk-000042")
        assert e.check_id == "chk-000042"

    def test_correlate_pops_on_exception(self):
        _, log = _log()
        with pytest.raises(RuntimeError):
            with log.correlate("chk-000001"):
                raise RuntimeError("boom")
        assert log.current_check is None


class TestRetentionAndQueries:
    def test_ring_evicts_oldest(self):
        _, log = _log(capacity=3)
        for i in range(5):
            log.emit("daemon.cycle", cycle=i)
        assert len(log) == 3
        assert [e.attrs["cycle"] for e in log.events] == [2, 3, 4]
        # sequence numbers keep counting past evictions
        assert [e.seq for e in log.events] == [2, 3, 4]

    def test_queries(self):
        clock, log = _log()
        with log.correlate("chk-000001"):
            log.emit("check.start")
            clock.advance(1.0)
            log.emit("check.verdict")
        clock.advance(1.0)
        log.emit("daemon.cycle")
        assert [e.name for e in log.by_check("chk-000001")] == \
            ["check.start", "check.verdict"]
        assert len(log.by_name("daemon.cycle")) == 1
        assert [e.name for e in log.window(0.5, 1.5)] == ["check.verdict"]
        assert [e.name for e in log.tail(1)] == ["daemon.cycle"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(SimClock(), capacity=0)


class TestSerialisation:
    def test_jsonl_lines_are_sorted_key_json(self):
        clock, log = _log()
        clock.advance(1.5)
        with log.correlate("chk-000001"):
            log.emit("check.start", module="hal.dll", vms=4)
        line = log.to_jsonl().splitlines()[0]
        doc = json.loads(line)
        assert doc == {"t": 1.5, "seq": 0, "event": "check.start",
                       "check_id": "chk-000001",
                       "attrs": {"module": "hal.dll", "vms": 4}}
        assert list(doc) == sorted(doc)      # sort_keys, deterministic

    def test_write_jsonl(self, tmp_path):
        _, log = _log()
        log.emit("daemon.cycle")
        path = log.write_jsonl(tmp_path / "audit.jsonl")
        assert path.read_text() == log.to_jsonl()

    def test_sink_is_complete_after_ring_eviction(self, tmp_path):
        clock = SimClock()
        log = EventLog(clock, capacity=2, sink=tmp_path / "audit.jsonl")
        for i in range(5):
            log.emit("daemon.cycle", cycle=i)
        log.close()
        lines = (tmp_path / "audit.jsonl").read_text().splitlines()
        assert len(lines) == 5               # ring holds 2, sink all 5
        assert len(log) == 2

    def test_event_without_id_or_attrs_omits_keys(self):
        _, log = _log()
        log.emit("daemon.cycle")
        doc = json.loads(log.to_jsonl())
        assert "check_id" not in doc and "attrs" not in doc


class TestNullEventLog:
    def test_everything_is_inert(self):
        assert not NULL_EVENTS.enabled
        assert NULL_EVENTS.new_check_id() == ""
        with NULL_EVENTS.correlate("chk-000001") as cid:
            assert cid == ""
            assert NULL_EVENTS.emit("check.start", module="x") is None
        assert NULL_EVENTS.current_check is None
        assert len(NULL_EVENTS) == 0
        assert NULL_EVENTS.events == []
        assert NULL_EVENTS.by_check("chk-000001") == []
        assert NULL_EVENTS.to_jsonl() == ""
        NULL_EVENTS.close()

    def test_correlation_scope_is_shared(self):
        assert (NULL_EVENTS.correlate("a") is NULL_EVENTS.correlate("b"))
