"""Bridge tests for the churn-era metrics: breaker state, membership,
chaos counters, and counter monotonicity across VMI session restarts."""

from __future__ import annotations

from repro.cloud import ChaosStats, build_testbed
from repro.core import ModChecker
from repro.core.health import BreakerConfig, HealthRegistry
from repro.obs import (BREAKER_STATE_VALUES, MetricsRegistry,
                       record_breaker_states, record_chaos_stats,
                       record_membership, record_vmi_instance)


class TestBreakerMetrics:
    def test_state_gauge_encodes_severity(self):
        health = HealthRegistry(BreakerConfig(open_cycles=1))
        health.record_failure("Dom1", "down")
        health.breaker("Dom2").record_success()
        reg = MetricsRegistry()
        record_breaker_states(reg, health)
        gauge = reg.gauge("modchecker_breaker_state")
        assert gauge.value(vm="Dom1") == BREAKER_STATE_VALUES["open"]
        assert gauge.value(vm="Dom2") == BREAKER_STATE_VALUES["closed"]

    def test_transition_counters_cumulative(self):
        health = HealthRegistry(BreakerConfig(open_cycles=1))
        health.record_failure("Dom1")
        health.tick()                      # -> half_open
        health.record_success("Dom1")      # -> closed
        reg = MetricsRegistry()
        record_breaker_states(reg, health)
        counter = reg.counter("modchecker_breaker_transitions_total")
        assert counter.value(vm="Dom1", state="open") == 1
        assert counter.value(vm="Dom1", state="half_open") == 1
        assert counter.value(vm="Dom1", state="closed") == 1
        # Re-recording the same registry state is idempotent.
        record_breaker_states(reg, health)
        assert counter.value(vm="Dom1", state="open") == 1


class TestMembershipMetrics:
    def test_pool_size_and_event_totals(self):
        reg = MetricsRegistry()
        events = [(0.0, "admit", "A"), (1.0, "admit", "B"),
                  (2.0, "reboot", "A"), (3.0, "evict", "B")]
        record_membership(reg, pool_size=4, events=events)
        assert reg.gauge("modchecker_pool_size").value() == 4
        counter = reg.counter("modchecker_membership_events_total")
        assert counter.value(event="admit") == 2
        assert counter.value(event="reboot") == 1
        assert counter.value(event="evict") == 1

    def test_cumulative_log_replays_monotonically(self):
        reg = MetricsRegistry()
        events = [(0.0, "admit", "A")]
        record_membership(reg, pool_size=3, events=events)
        events.append((5.0, "admit", "B"))
        record_membership(reg, pool_size=4, events=events)
        assert reg.counter(
            "modchecker_membership_events_total").value(event="admit") == 2


class TestChaosMetrics:
    def test_event_counters_by_kind(self):
        stats = ChaosStats(steps=5, reboots=2, pauses=1, unpauses=1,
                           migrations=1, migrations_finished=1,
                           destroys=0, creates=1)
        reg = MetricsRegistry()
        record_chaos_stats(reg, stats)
        counter = reg.counter("modchecker_chaos_events_total")
        assert counter.value(kind="reboots") == 2
        assert counter.value(kind="creates") == 1
        assert counter.value(kind="destroys") == 0


class TestVmiCounterContinuity:
    def test_session_restart_never_goes_backwards(self):
        # A reboot retires the VMI session; the checker folds the old
        # session's counters into a baseline so the published totals
        # stay monotonic (set_to would raise otherwise).
        tb = build_testbed(2, seed=42)
        mc = ModChecker(tb.hypervisor, tb.profile)
        vm = tb.vm_names[0]
        mc.check_pool("hal.dll")
        reg = MetricsRegistry()
        record_vmi_instance(reg, vm, mc.vmi_for(vm),
                            base=mc._vmi_stats_base.get(vm))
        before = reg.counter(
            "modchecker_vmi_pages_mapped_total").value(vm=vm)
        assert before > 0

        tb.hypervisor.reboot(vm)
        mc.admit_vm(vm)                     # retires the stale session
        mc.check_pool("hal.dll")            # fresh session, small counts
        record_vmi_instance(reg, vm, mc.vmi_for(vm),
                            base=mc._vmi_stats_base.get(vm))
        after = reg.counter(
            "modchecker_vmi_pages_mapped_total").value(vm=vm)
        assert after >= before

    def test_two_reboot_cycles_stay_monotonic_end_to_end(self):
        # TWO full reboot/retire cycles through ModChecker's own
        # publication path (_record_outcome with live metrics): every
        # re-attach folds another baseline, and set_to would raise if
        # any published total ever ran backwards.
        from repro.obs import make_observability
        tb = build_testbed(2, seed=42)
        obs = make_observability(tb.clock)
        mc = ModChecker(tb.hypervisor, tb.profile, obs=obs)
        vm = tb.vm_names[0]
        counter = obs.metrics.counter("modchecker_vmi_pages_mapped_total")

        totals = []
        mc.check_pool("hal.dll")
        totals.append(counter.value(vm=vm))
        for _ in range(2):                  # reboot -> retire -> re-check
            tb.hypervisor.reboot(vm)
            mc.admit_vm(vm)
            mc.check_pool("hal.dll")
            totals.append(counter.value(vm=vm))
        assert totals[0] > 0
        assert totals == sorted(totals)
        # and each cycle actually added introspection work
        assert totals[2] > totals[0]

    def test_evicted_vm_keeps_publishing_folded_totals(self):
        # Regression: _record_outcome used to iterate live sessions
        # only, so an evicted VM's final session tail silently vanished
        # from the published totals until (unless) it re-attached.
        from repro.obs import make_observability
        tb = build_testbed(3, seed=7)
        obs = make_observability(tb.clock)
        mc = ModChecker(tb.hypervisor, tb.profile, obs=obs)
        gone = tb.vm_names[2]
        survivors = tb.vm_names[:2]
        counter = obs.metrics.counter("modchecker_vmi_pages_mapped_total")

        mc.check_pool("hal.dll")
        before = counter.value(vm=gone)
        assert before > 0
        mc.evict_vm(gone)                   # retires the session
        mc.check_pool("hal.dll", vms=survivors)
        assert counter.value(vm=gone) == before

    def test_record_vmi_instance_accepts_retired_only_state(self):
        from repro.obs import MetricsRegistry
        from repro.vmi.core import VMIStats
        reg = MetricsRegistry()
        base = VMIStats(pages_mapped=7, bytes_read=512)
        record_vmi_instance(reg, "DomX", None, base=base)
        counter = reg.counter("modchecker_vmi_pages_mapped_total")
        assert counter.value(vm="DomX") == 7
        # no live session -> the per-round cache-ratio gauges are absent
        assert reg.gauge("modchecker_cache_hit_ratio").value(
            vm="DomX", cache="v2p") == 0.0
        # nothing at all to publish is a no-op, not a crash
        record_vmi_instance(reg, "DomY", None, base=None)
        assert counter.value(vm="DomY") == 0
