"""Telemetry sink parsing and delivery (the CLI ``--sink`` contract)."""

import json

import pytest

from repro.obs import make_observability
from repro.obs.sinks import (SINK_NAMES, JsonlSink, NullSink, PromSink,
                             SinkError, StdoutSink, parse_sink,
                             parse_sink_opts)


class TestParseOpts:
    def test_none_is_empty(self):
        assert parse_sink_opts(None) == {}

    def test_pairs(self):
        assert parse_sink_opts(["path=/tmp/x", "mode=append"]) \
            == {"path": "/tmp/x", "mode": "append"}

    def test_value_may_contain_equals(self):
        assert parse_sink_opts(["path=a=b"]) == {"path": "a=b"}

    @pytest.mark.parametrize("bad", ["path", "=value", "justakey"])
    def test_malformed_pair_rejected(self, bad):
        with pytest.raises(SinkError):
            parse_sink_opts([bad])


class TestParseSink:
    def test_default_is_null(self):
        assert isinstance(parse_sink("do_nothing"), NullSink)
        assert isinstance(parse_sink("null"), NullSink)

    def test_stdout(self):
        assert isinstance(parse_sink("stdout"), StdoutSink)

    def test_jsonl_needs_path(self):
        with pytest.raises(SinkError, match="path"):
            parse_sink("jsonl")
        sink = parse_sink("jsonl", {"path": "/tmp/fleet.jsonl"})
        assert isinstance(sink, JsonlSink)

    def test_prometheus_needs_path(self):
        with pytest.raises(SinkError, match="path"):
            parse_sink("prometheus")
        assert isinstance(
            parse_sink("prometheus", {"path": "/tmp/m.prom"}), PromSink)

    def test_unknown_sink_rejected(self):
        with pytest.raises(SinkError, match="unknown sink"):
            parse_sink("carrier-pigeon")

    def test_leftover_opts_rejected(self):
        with pytest.raises(SinkError, match="does not take"):
            parse_sink("stdout", {"path": "/tmp/x"})

    def test_vocabulary_is_parseable(self):
        for name in SINK_NAMES:
            opts = {"path": "/tmp/x"} if name in ("jsonl",
                                                  "prometheus") else {}
            assert parse_sink(name, opts).name in (name, "do_nothing")


class TestDelivery:
    RECORD = {"check": "fleet", "status": "OK", "exit_code": 0}

    def test_null_discards(self):
        NullSink().emit(self.RECORD)        # must not raise

    def test_stdout_emits_one_json_line(self, capsys):
        StdoutSink().emit(self.RECORD)
        out = capsys.readouterr().out
        assert json.loads(out) == self.RECORD
        assert out.count("\n") == 1

    def test_jsonl_appends(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        sink = JsonlSink(str(path))
        sink.emit(self.RECORD)
        sink.emit({"check": "fleet", "status": "WARN", "exit_code": 1})
        rows = [json.loads(line)
                for line in path.read_text().splitlines()]
        assert [r["exit_code"] for r in rows] == [0, 1]

    def test_prometheus_writes_registry(self, tmp_path):
        from repro.hypervisor.clock import SimClock
        obs = make_observability(SimClock())
        obs.metrics.counter("modchecker_test_total", "A test series").inc()
        path = tmp_path / "fleet.prom"
        sink = PromSink(str(path))
        sink.emit(self.RECORD)              # records are not the payload
        sink.finalize(obs)
        assert "modchecker_test_total" in path.read_text()
