"""Tracer unit tests: nesting, timing on SimClock, the no-op path."""

from __future__ import annotations

import time

from repro.hypervisor.clock import SimClock
from repro.obs import NULL_TRACER, SPAN_NAMES, Tracer


class TestSpanBasics:
    def test_span_measures_simulated_elapsed(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("searcher.walk", vm="Dom1") as span:
            clock.advance(0.25)
        assert span.finished
        assert span.start == 0.0
        assert span.end == 0.25
        assert span.duration == 0.25
        assert span.attrs == {"vm": "Dom1"}

    def test_attrs_settable_at_exit(self):
        tracer = Tracer(SimClock())
        with tracer.span("searcher.walk") as span:
            span.set(entries=10)
        assert span.attrs["entries"] == 10

    def test_category_is_dotted_prefix(self):
        tracer = Tracer(SimClock())
        with tracer.span("vmi.read_page") as span:
            pass
        assert span.category == "vmi"

    def test_open_span_duration_is_zero(self):
        tracer = Tracer(SimClock())
        ctx = tracer.span("daemon.cycle")
        ctx.__enter__()
        assert not ctx.span.finished
        assert ctx.span.duration == 0.0
        ctx.__exit__(None, None, None)

    def test_error_attr_recorded_on_exception(self):
        tracer = Tracer(SimClock())
        try:
            with tracer.span("modchecker.check"):
                raise ValueError("boom")
        except ValueError:
            pass
        (span,) = tracer.spans
        assert span.finished
        assert span.attrs["error"] == "ValueError"


class TestNesting:
    def test_parent_child_links(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("modchecker.check") as outer:
            clock.advance(0.1)
            with tracer.span("modchecker.fetch") as mid:
                clock.advance(0.2)
                with tracer.span("searcher.copy") as inner:
                    clock.advance(0.3)
        assert outer.parent_id is None
        assert mid.parent_id == outer.span_id
        assert inner.parent_id == mid.span_id
        assert tracer.roots() == [outer]
        assert tracer.children_of(outer) == [mid]
        assert tracer.children_of(mid) == [inner]

    def test_children_fit_inside_parent(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("modchecker.check") as outer:
            clock.advance(0.1)
            with tracer.span("checker.compare") as inner:
                clock.advance(0.5)
            clock.advance(0.1)
        assert outer.start <= inner.start
        assert inner.end <= outer.end
        assert inner.duration <= outer.duration

    def test_siblings_share_parent(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("modchecker.fetch") as parent:
            with tracer.span("searcher.copy"):
                clock.advance(0.1)
            with tracer.span("parser.parse"):
                clock.advance(0.1)
        kids = tracer.children_of(parent)
        assert [s.name for s in kids] == ["searcher.copy", "parser.parse"]

    def test_active_tracks_innermost(self):
        tracer = Tracer(SimClock())
        assert tracer.active is None
        with tracer.span("modchecker.check") as outer:
            assert tracer.active is outer
            with tracer.span("modchecker.fetch") as inner:
                assert tracer.active is inner
            assert tracer.active is outer
        assert tracer.active is None

    def test_total_by_name_sums_durations(self):
        clock = SimClock()
        tracer = Tracer(clock)
        for _ in range(3):
            with tracer.span("parser.parse"):
                clock.advance(0.5)
        totals = tracer.total_by_name()
        assert abs(totals["parser.parse"] - 1.5) < 1e-12

    def test_clear_resets(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("daemon.cycle"):
            clock.advance(1.0)
        tracer.clear()
        assert tracer.spans == []
        assert tracer.active is None


class TestNullTracer:
    def test_disabled_and_recordless(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("searcher.walk", vm="Dom1") as span:
            span.set(entries=3)
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.finished_spans() == []
        assert NULL_TRACER.total_by_name() == {}
        assert NULL_TRACER.active is None

    def test_span_is_shared_singleton(self):
        a = NULL_TRACER.span("parser.parse")
        b = NULL_TRACER.span("checker.compare", module="hal.dll")
        assert a is b

    def test_null_span_overhead_under_5_percent(self, monkeypatch):
        """The no-op tracer must not tax an un-instrumented pipeline.

        Hot call sites guard on ``tracer.enabled``, so a disabled run
        only reaches ``NullTracer.span`` at the coarse pipeline joints.
        Measure the unit cost of a null span, count how many an actual
        pool check performs, and require their product to stay under 5%
        of the check's host wall-time.
        """
        from repro.cloud import build_testbed
        from repro.core import ModChecker
        from repro.obs.trace import NullTracer

        n = 100_000
        t0 = time.perf_counter()
        for _ in range(n):
            with NULL_TRACER.span("vmi.read_page"):
                pass
        unit = (time.perf_counter() - t0) / n

        tb = build_testbed(3, seed=42)
        mc = ModChecker(tb.hypervisor, tb.profile)
        mc.check_pool("hal.dll")                 # warm imports/caches
        t0 = time.perf_counter()
        mc.check_pool("hal.dll")
        base = time.perf_counter() - t0

        calls = 0
        orig = NullTracer.span

        def counting(self, name, **attrs):
            nonlocal calls
            calls += 1
            return orig(self, name, **attrs)

        monkeypatch.setattr(NullTracer, "span", counting)
        mc.check_pool("hal.dll")                 # deterministic replay
        null_cost = calls * unit
        assert null_cost < 0.05 * base, (
            f"{calls} null spans x {unit * 1e9:.0f}ns = {null_cost:.6f}s "
            f"vs {base:.4f}s of real work (>{null_cost / base:.1%})")


def test_span_vocabulary_is_closed():
    assert "vmi.read_page" in SPAN_NAMES
    assert "daemon.cycle" in SPAN_NAMES
    assert len(SPAN_NAMES) == len(set(SPAN_NAMES))
