"""SLO engine tests: HDR quantiles vs numpy, budgets, burn-rate alerts."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.hypervisor.clock import SimClock
from repro.obs import make_observability
from repro.obs.slo import (DEFAULT_OBJECTIVES, SLO_EXIT_CODES, SLO_QUANTILES,
                           LogHistogram, SloConfig, SloEngine, SloObjective,
                           SloTracker)

GROWTH = 1.05


def _distributions():
    rng = np.random.default_rng(2012)
    return {
        "uniform": rng.uniform(0.001, 10.0, 5000),
        "lognormal": rng.lognormal(mean=-2.0, sigma=1.0, size=5000),
        # 2000/3000 split so no tested quantile lands in the gap
        # between modes, where numpy interpolates across a region
        # containing no samples and any histogram must disagree
        "bimodal": np.concatenate([
            rng.normal(0.01, 0.001, 2000).clip(min=1e-5),
            rng.normal(1.0, 0.05, 3000).clip(min=1e-5)]),
    }


class TestLogHistogramAccuracy:
    @pytest.mark.parametrize("name", ["uniform", "lognormal", "bimodal"])
    def test_quantiles_within_growth_factor_of_numpy(self, name):
        values = _distributions()[name]
        hist = LogHistogram(growth=GROWTH)
        for v in values:
            hist.observe(float(v))
        for q in SLO_QUANTILES:
            exact = float(np.quantile(values, q))
            got = hist.quantile(q)
            assert abs(got - exact) / exact <= GROWTH - 1.0, \
                f"{name} p{q}: {got} vs exact {exact}"

    def test_extremes_stay_inside_the_observed_range(self):
        hist = LogHistogram()
        for v in (0.2, 3.0, 7.5):
            hist.observe(v)
        assert 0.2 <= hist.quantile(0.0) <= 0.2 * GROWTH
        assert 7.5 / GROWTH <= hist.quantile(1.0) <= 7.5
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert 0.2 <= hist.quantile(q) <= 7.5

    def test_mean_and_count_are_exact(self):
        values = _distributions()["lognormal"]
        hist = LogHistogram()
        for v in values:
            hist.observe(float(v))
        assert hist.count == len(values)
        assert abs(hist.mean - float(np.mean(values))) < 1e-9

    def test_underflow_bucket_and_validation(self):
        hist = LogHistogram(min_value=1e-3)
        hist.observe(0.0)
        assert hist.quantile(0.5) == 0.0         # clamped to min_seen
        with pytest.raises(ValueError):
            hist.observe(-1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            LogHistogram(growth=1.0)
        with pytest.raises(ValueError):
            LogHistogram(min_value=0.0)

    def test_empty_histogram_quantile_is_zero(self):
        assert LogHistogram().quantile(0.99) == 0.0


class TestLogHistogramMerge:
    def test_merging_shards_equals_pooled(self):
        values = _distributions()["bimodal"]
        pooled = LogHistogram()
        shards = [LogHistogram() for _ in range(3)]
        for i, v in enumerate(values):
            pooled.observe(float(v))
            shards[i % 3].observe(float(v))
        merged = LogHistogram()
        for shard in shards:
            merged.merge(shard)
        assert merged.counts == pooled.counts
        assert merged.count == pooled.count
        assert merged.min_seen == pooled.min_seen
        assert merged.max_seen == pooled.max_seen
        for q in SLO_QUANTILES:
            assert merged.quantile(q) == pooled.quantile(q)

    def test_merge_is_associative(self):
        values = _distributions()["uniform"]
        shards = [LogHistogram() for _ in range(3)]
        for i, v in enumerate(values):
            shards[i % 3].observe(float(v))
        left = shards[0].copy().merge(shards[1]).merge(shards[2])
        right = shards[1].copy().merge(shards[2]).merge(shards[0])
        assert left.counts == right.counts
        assert abs(left.sum - right.sum) < 1e-9

    def test_layout_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram(growth=1.05).merge(LogHistogram(growth=1.1))

    def test_dict_round_trip(self):
        hist = LogHistogram()
        for v in (0.01, 0.5, 0.5, 12.0):
            hist.observe(v)
        clone = LogHistogram.from_dict(
            json.loads(json.dumps(hist.to_dict())))
        assert clone.counts == hist.counts
        assert clone.count == hist.count
        for q in SLO_QUANTILES:
            assert clone.quantile(q) == hist.quantile(q)

    def test_empty_dict_round_trip(self):
        clone = LogHistogram.from_dict(LogHistogram().to_dict())
        assert clone.count == 0
        assert math.isinf(clone.min_seen)


class TestConfig:
    def test_objective_direction(self):
        latency = SloObjective("cycle_latency", target=30.0)
        assert latency.is_good(29.0) and not latency.is_good(31.0)
        coverage = SloObjective("coverage", target=0.8,
                                higher_is_better=True)
        assert coverage.is_good(0.9) and not coverage.is_good(0.7)

    def test_defaults_and_budget(self):
        config = SloConfig()
        assert config.objectives == DEFAULT_OBJECTIVES
        assert abs(config.objective("cycle_latency").budget - 0.01) < 1e-12

    def test_from_dict_overrides(self):
        config = SloConfig.from_dict({
            "objectives": [{"name": "cycle_latency", "target": 0.5,
                            "goal": 0.9}],
            "fast_window": 120, "fast_burn": 10})
        assert len(config.objectives) == 1
        assert config.fast_window == 120.0
        assert config.fast_burn == 10.0
        assert config.slow_window == 3600.0

    def test_load_and_errors(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"objectives": [
            {"name": "mttr", "target": 100, "goal": 0.5}]}))
        assert SloConfig.load(path).objective("mttr").goal == 0.5
        with pytest.raises(ValueError):
            SloConfig.load(tmp_path / "missing.json")
        path.write_text("{not json")
        with pytest.raises(ValueError):
            SloConfig.load(path)

    def test_validation(self):
        with pytest.raises(ValueError):
            SloObjective("x", target=1.0, goal=1.0)
        with pytest.raises(ValueError):
            SloConfig(objectives=())
        with pytest.raises(ValueError):
            SloConfig(fast_window=7200.0)       # exceeds slow_window
        with pytest.raises(ValueError):
            SloConfig(objectives=(
                SloObjective("a", target=1.0),
                SloObjective("a", target=2.0)))


def _tight_config(**kwargs) -> SloConfig:
    return SloConfig(objectives=(
        SloObjective("cycle_latency", target=1.0, goal=0.99),), **kwargs)


class TestTracker:
    def test_all_good_is_ok_with_full_budget(self):
        tracker = SloTracker(_tight_config())
        for i in range(10):
            tracker.record("cycle_latency", 0.5, now=float(i * 60))
        status = tracker.evaluate(540.0)
        obj = status.objective("cycle_latency")
        assert obj.state == "ok"
        assert obj.budget_remaining == 1.0
        assert obj.fast_burn == 0.0 and obj.slow_burn == 0.0
        assert status.exit_code == 0

    def test_sustained_badness_is_critical_on_both_windows(self):
        tracker = SloTracker(_tight_config())
        for i in range(15):
            tracker.record("cycle_latency", 5.0, now=float(i * 60))
        status = tracker.evaluate(14 * 60.0)
        obj = status.objective("cycle_latency")
        # every event bad: burn = 1.0 / 0.01 = 100x on both windows
        assert abs(obj.fast_burn - 100.0) < 1e-9
        assert abs(obj.slow_burn - 100.0) < 1e-9
        assert obj.state == "critical"
        assert status.exit_code == SLO_EXIT_CODES["critical"]

    def test_old_badness_alone_cannot_page(self):
        # bad burst long ago, healthy since: fast window clean -> warn
        # at most (budget still spent), never critical
        tracker = SloTracker(_tight_config())
        for i in range(5):
            tracker.record("cycle_latency", 5.0, now=float(i))
        for i in range(20):
            tracker.record("cycle_latency", 0.1, now=500.0 + i * 10)
        status = tracker.evaluate(700.0)
        obj = status.objective("cycle_latency")
        assert obj.fast_burn == 0.0
        assert obj.slow_burn > 0.0
        assert obj.state == "warn"              # budget gone, not burning
        assert status.exit_code == 1

    def test_events_age_out_of_the_slow_window(self):
        tracker = SloTracker(_tight_config())
        tracker.record("cycle_latency", 5.0, now=0.0)
        status = tracker.evaluate(4000.0)
        obj = status.objective("cycle_latency")
        assert obj.good == 0 and obj.bad == 0
        assert obj.state == "ok"

    def test_unknown_objective_rejected(self):
        with pytest.raises(KeyError):
            SloTracker(_tight_config()).record("nope", 1.0, 0.0)


class TestEngine:
    def test_breach_event_is_edge_triggered(self):
        clock = SimClock()
        obs = make_observability(clock)
        engine = SloEngine(_tight_config(), obs=obs)
        for i in range(10):
            engine.record("daemon", "cycle_latency", 5.0, float(i * 60))
        engine.evaluate(540.0)
        engine.evaluate(600.0)                  # still critical: no re-fire
        breaches = obs.events.by_name("slo.breach")
        budgets = obs.events.by_name("slo.budget")
        assert len(breaches) == 1
        assert len(budgets) == 1
        assert breaches[0].attrs["objective"] == "cycle_latency"
        assert breaches[0].attrs["scope"] == "daemon"
        assert engine.breaches == {"cycle_latency": 1}

    def test_recovery_re_arms_the_edge(self):
        clock = SimClock()
        obs = make_observability(clock)
        engine = SloEngine(_tight_config(), obs=obs)
        for i in range(5):
            engine.record("daemon", "cycle_latency", 5.0, float(i))
        engine.evaluate(5.0)                     # critical: edge 1
        engine.evaluate(4000.0)                  # events aged out: ok
        for i in range(5):
            engine.record("daemon", "cycle_latency", 5.0, 4100.0 + i)
        engine.evaluate(4105.0)                  # critical again: edge 2
        assert len(obs.events.by_name("slo.breach")) == 2
        assert engine.breaches == {"cycle_latency": 2}

    def test_worst_scope_wins_the_pooled_state(self):
        engine = SloEngine(_tight_config())
        for i in range(10):
            engine.record("shard-a", "cycle_latency", 0.1, float(i * 60))
            engine.record("shard-b", "cycle_latency", 5.0, float(i * 60))
        status = engine.evaluate(540.0)
        obj = status.objective("cycle_latency")
        assert obj.state == "critical"           # shard-b burns
        assert obj.good == 10 and obj.bad == 10  # pooled counts
        assert status.exit_code == 2

    def test_unconfigured_signal_is_ignored(self):
        engine = SloEngine(_tight_config())
        assert engine.record("daemon", "coverage", 0.5, 0.0) is None
        assert engine.evaluate(1.0).state == "ok"

    def test_metrics_published_on_evaluate(self):
        clock = SimClock()
        obs = make_observability(clock)
        engine = SloEngine(_tight_config(), obs=obs)
        for i in range(10):
            engine.record("daemon", "cycle_latency", 5.0, float(i * 60))
        engine.evaluate(540.0)
        names = set(obs.metrics.snapshot())
        assert {"modchecker_slo_state", "modchecker_slo_budget_remaining",
                "modchecker_slo_burn_rate", "modchecker_slo_events_total",
                "modchecker_slo_breaches_total",
                "modchecker_slo_latency"} <= names
        gauge = obs.metrics.gauge("modchecker_slo_state")
        assert gauge.value(objective="cycle_latency") == 2

    def test_status_to_dict_is_json_ready(self):
        engine = SloEngine(_tight_config())
        engine.record("daemon", "cycle_latency", 0.5, 0.0)
        doc = json.loads(json.dumps(engine.evaluate(1.0).to_dict()))
        assert doc["state"] == "ok" and doc["exit_code"] == 0
        (obj,) = doc["objectives"]
        assert obj["name"] == "cycle_latency"
        assert "p99" in obj["quantiles"]
