"""Metrics registry unit tests: families, exposition format, no-ops."""

from __future__ import annotations

import json
import math
import re

import pytest

from repro.obs import NULL_METRICS, MetricsRegistry
from repro.obs.metrics import _escape_label_value, _format_value


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("checks_total")
        c.inc(module="hal.dll")
        c.inc(2, module="hal.dll")
        c.inc(module="http.sys")
        assert c.value(module="hal.dll") == 3
        assert c.value(module="http.sys") == 1
        assert c.value(module="absent") == 0

    def test_negative_inc_rejected(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_set_to_is_monotone(self):
        c = MetricsRegistry().counter("bytes_total")
        c.set_to(100, vm="Dom1")
        c.set_to(250, vm="Dom1")
        assert c.value(vm="Dom1") == 250
        with pytest.raises(ValueError, match="went backwards"):
            c.set_to(200, vm="Dom1")

    def test_label_order_is_canonical(self):
        c = MetricsRegistry().counter("x_total")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("quorum")
        g.set(5)
        g.dec(2)
        g.inc(1)
        assert g.value() == 4


class TestHistogram:
    def test_bucketing_and_sum_count(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v, stage="searcher")
        assert h.count(stage="searcher") == 4
        assert abs(h.sum(stage="searcher") - 6.05) < 1e-12

    def test_registry_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(TypeError):
            reg.gauge("x_total")

    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("ok_total").inc(**{"bad-label": 1})


class TestPrometheusExposition:
    def test_help_type_and_samples(self):
        reg = MetricsRegistry()
        reg.counter("checks_total", "Completed checks").inc(
            module="hal.dll", verdict="clean")
        text = reg.to_prometheus()
        assert "# HELP checks_total Completed checks\n" in text
        assert "# TYPE checks_total counter\n" in text
        assert 'checks_total{module="hal.dll",verdict="clean"} 1.0' in text
        assert text.endswith("\n")

    def test_histogram_rendering_is_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = reg.to_prometheus()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1.0"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_sum 5.55" in text
        assert "lat_seconds_count 3" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x_total").inc(why='say "hi"\nback\\slash')
        line = [ln for ln in reg.to_prometheus().splitlines()
                if ln.startswith("x_total{")][0]
        assert r'\"hi\"' in line
        assert r"\n" in line
        assert "\n" not in line
        assert r"back\\slash" in line

    def test_exposition_parses_line_by_line(self):
        """Every non-comment line must be `name{labels} value`."""
        import re
        reg = MetricsRegistry()
        reg.counter("a_total", "h").inc(vm="Dom1")
        reg.gauge("b", "h").set(1.5)
        reg.histogram("c_seconds", "h").observe(0.2, stage="parser")
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? '
            r"[0-9eE.+-]+|\+Inf$")
        for line in reg.to_prometheus().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) ", line)
            else:
                assert sample.match(line), line


#: Strict exposition-format label parser: label values are everything
#: between the quotes, with `\\`, `\"` and `\n` as the only escapes.
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        if value[i] == "\\":
            nxt = value[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}[nxt])
            i += 2
        else:
            out.append(value[i])
            i += 1
    return "".join(out)


class TestEscapingRoundTrip:
    @pytest.mark.parametrize("raw", [
        'plain',
        'line one\nline two',
        'say "hi"',
        'back\\slash',
        'all three: "\\\n"',
        '\\n literal backslash-n',
        'trailing backslash\\',
    ])
    def test_label_value_survives_exposition(self, raw):
        # The escaped form must stay on one line and a strict parser
        # must recover the original value exactly.
        escaped = _escape_label_value(raw)
        assert "\n" not in escaped
        reg = MetricsRegistry()
        reg.counter("x_total").inc(why=raw)
        line = [ln for ln in reg.to_prometheus().splitlines()
                if ln.startswith("x_total{")][0]
        matches = dict(_LABEL_RE.findall(line))
        assert _unescape(matches["why"]) == raw

    def test_distinct_raw_values_stay_distinct(self):
        # '\n' (escaped newline) and a literal backslash-n must not
        # collide after escaping — the classic double-escape bug.
        assert (_escape_label_value("a\nb")
                != _escape_label_value("a\\nb"))


class TestFormatValue:
    def test_infinities_use_prometheus_spelling(self):
        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"

    def test_nan_is_canonical(self):
        assert _format_value(float("nan")) == "NaN"

    def test_finite_values_round_trip(self):
        for v in (0.0, 1.5, -2.25, 1e-9, 12345.0):
            assert float(_format_value(v)) == v

    def test_special_values_render_in_exposition(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(float("inf"), kind="pos")
        reg.gauge("g").set(float("nan"), kind="nan")
        text = reg.to_prometheus()
        assert 'g{kind="pos"} +Inf' in text
        assert 'g{kind="nan"} NaN' in text
        # the canonical spellings parse back to the same specials
        assert math.isinf(float("+Inf")) and math.isnan(float("NaN"))


class TestSnapshots:
    def test_snapshot_round_trips_through_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a_total", "help a").inc(3, vm="Dom1")
        reg.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
        path = reg.write_json(tmp_path / "m.json")
        data = json.loads(path.read_text())
        assert data["a_total"]["type"] == "counter"
        assert data["a_total"]["samples"] == [
            {"labels": {"vm": "Dom1"}, "value": 3.0}]
        hist = data["lat_seconds"]["samples"][0]
        assert hist["count"] == 1 and hist["sum"] == 0.5

    def test_histogram_snapshot_buckets_are_cumulative_le_keyed(self):
        """The JSON snapshot and the scraped `_bucket` series must
        agree sample-for-sample: cumulative counts keyed by `le`
        upper bounds, `+Inf` included."""
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v, stage="parser")
        (sample,) = reg.snapshot()["lat_seconds"]["samples"]
        assert sample["labels"] == {"stage": "parser"}
        assert sample["buckets"] == {"0.1": 1, "1.0": 2, "+Inf": 3}
        assert sample["count"] == 3
        # every snapshot bucket matches its exposition line exactly
        text = reg.to_prometheus()
        for le, n in sample["buckets"].items():
            assert (f'lat_seconds_bucket{{stage="parser",le="{le}"}} {n}'
                    in text)

    def test_histogram_snapshot_survives_json_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(1.0,))
        h.observe(0.5)
        h.observe(2.0)
        path = reg.write_json(tmp_path / "m.json")
        (sample,) = json.loads(path.read_text())["lat_seconds"]["samples"]
        assert sample["buckets"] == {"1.0": 1, "+Inf": 2}
        assert sample["sum"] == 2.5 and sample["count"] == 2

    def test_write_prometheus(self, tmp_path):
        reg = MetricsRegistry()
        reg.gauge("g").set(2)
        path = reg.write_prometheus(tmp_path / "m.prom")
        assert "g 2.0" in path.read_text()


class TestNullMetrics:
    def test_all_ops_are_inert(self):
        assert not NULL_METRICS.enabled
        c = NULL_METRICS.counter("x_total")
        c.inc()
        c.set_to(10)
        NULL_METRICS.gauge("g").set(1)
        NULL_METRICS.histogram("h").observe(0.5)
        assert c.value() == 0.0
        assert NULL_METRICS.to_prometheus() == ""
        assert NULL_METRICS.snapshot() == {}
        assert len(NULL_METRICS) == 0

    def test_families_share_one_instance(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.gauge("b")
