"""Chrome trace-event export tests."""

from __future__ import annotations

import json

from repro.analysis.export import chrome_trace_events, write_chrome_trace
from repro.hypervisor.clock import SimClock
from repro.obs import Tracer


def _sample_tracer():
    clock = SimClock()
    tracer = Tracer(clock)
    with tracer.span("modchecker.check", module="hal.dll"):
        clock.advance(0.001)
        with tracer.span("searcher.copy", vm="Dom1") as s:
            clock.advance(0.002)
            s.set(bytes=4096)
        with tracer.span("parser.parse", vm="Dom1"):
            clock.advance(0.0005)
    return tracer


class TestChromeTraceEvents:
    def test_complete_events_in_microseconds(self):
        events = chrome_trace_events(_sample_tracer().spans)
        assert len(events) == 3
        copy = next(e for e in events if e["name"] == "searcher.copy")
        assert copy["ph"] == "X"
        assert copy["cat"] == "searcher"
        assert abs(copy["ts"] - 1000.0) < 1e-6      # starts at 1 ms
        assert abs(copy["dur"] - 2000.0) < 1e-6     # lasts 2 ms
        assert copy["args"]["vm"] == "Dom1"
        assert copy["args"]["bytes"] == 4096

    def test_parent_ids_preserved(self):
        events = chrome_trace_events(_sample_tracer().spans)
        check = next(e for e in events if e["name"] == "modchecker.check")
        copy = next(e for e in events if e["name"] == "searcher.copy")
        assert "parent_id" not in check["args"]
        assert copy["args"]["parent_id"] == check["args"]["span_id"]

    def test_unfinished_spans_skipped(self):
        tracer = Tracer(SimClock())
        ctx = tracer.span("daemon.cycle")
        ctx.__enter__()
        assert chrome_trace_events(tracer.spans) == []
        ctx.__exit__(None, None, None)
        assert len(chrome_trace_events(tracer.spans)) == 1


class TestEdgeCases:
    def test_empty_tracer_is_a_valid_trace(self, tmp_path):
        tracer = Tracer(SimClock())
        assert chrome_trace_events(tracer.spans) == []
        path = write_chrome_trace(tracer, tmp_path / "empty.json")
        doc = json.load(open(path))
        assert doc["traceEvents"] == []

    def test_nested_spans_keep_pairing_balanced(self):
        # Deep nesting: replay every span's [begin, end] boundary as a
        # bracket sequence and assert proper stack discipline — no
        # span closes before a child it contains.
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("daemon.cycle"):
            clock.advance(0.001)
            with tracer.span("modchecker.check"):
                clock.advance(0.001)
                with tracer.span("modchecker.fetch"):
                    clock.advance(0.001)
                    with tracer.span("searcher.copy", vm="Dom1"):
                        clock.advance(0.001)
                clock.advance(0.001)
            with tracer.span("checker.compare"):
                clock.advance(0.001)
        events = chrome_trace_events(tracer.spans)
        assert len(events) == 5
        boundaries = []
        for e in events:
            boundaries.append((e["ts"], 1, e["ts"] + e["dur"], e["name"]))
        # Sort begins by time; at equal times the longer span opens
        # first (it is the parent).
        boundaries.sort(key=lambda b: (b[0], -(b[2] - b[0])))
        stack = []
        for begin, _, end, name in boundaries:
            while stack and stack[-1][0] <= begin:
                stack.pop()
            for open_end, open_name in stack:
                assert end <= open_end + 1e-9, \
                    f"{name} outlives enclosing {open_name}"
            stack.append((end, name))
    def test_file_loads_and_nests(self, tmp_path):
        tracer = _sample_tracer()
        path = write_chrome_trace(tracer, tmp_path / "trace.json",
                                  metadata={"seed": 42})
        doc = json.load(open(path))
        events = doc["traceEvents"]
        assert doc["otherData"]["clock"] == "simulated"
        assert doc["otherData"]["seed"] == 42
        # children nest inside their parent's [ts, ts+dur] window
        by_id = {e["args"]["span_id"]: e for e in events}
        for e in events:
            parent_id = e["args"].get("parent_id")
            if parent_id is None:
                continue
            p = by_id[parent_id]
            assert p["ts"] <= e["ts"]
            assert e["ts"] + e["dur"] <= p["ts"] + p["dur"] + 1e-9
