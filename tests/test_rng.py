"""Unit tests for deterministic RNG plumbing."""

import numpy as np

from repro.rng import DEFAULT_SEED, derive_seed, make_rng, spawn_rngs


class TestMakeRng:
    def test_deterministic(self):
        assert make_rng(5).integers(0, 1 << 30) == \
            make_rng(5).integers(0, 1 << 30)

    def test_none_uses_project_default(self):
        assert make_rng(None).integers(0, 1 << 30) == \
            make_rng(DEFAULT_SEED).integers(0, 1 << 30)

    def test_different_seeds_differ(self):
        draws_a = make_rng(1).integers(0, 1 << 30, 8)
        draws_b = make_rng(2).integers(0, 1 << 30, 8)
        assert not np.array_equal(draws_a, draws_b)


class TestSpawn:
    def test_count(self):
        assert len(spawn_rngs(1, 5)) == 5

    def test_streams_independent(self):
        a, b = spawn_rngs(1, 2)
        assert not np.array_equal(a.integers(0, 1 << 30, 16),
                                  b.integers(0, 1 << 30, 16))

    def test_reproducible(self):
        first = [r.integers(0, 1 << 30) for r in spawn_rngs(7, 3)]
        second = [r.integers(0, 1 << 30) for r in spawn_rngs(7, 3)]
        assert first == second


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_tag_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_none_seed_is_default(self):
        assert derive_seed(None, "x") == derive_seed(DEFAULT_SEED, "x")

    def test_result_fits_63_bits(self):
        for seed in (0, 1, 2**62, -1 & 0xFFFFFFFF):
            value = derive_seed(seed, "tag")
            assert 0 <= value < 1 << 63
