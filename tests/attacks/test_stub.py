"""Unit tests for E3 — DOS stub modification."""

import pytest

from repro.attacks.stub import StubModificationAttack
from repro.errors import AttackError


@pytest.fixture(scope="module")
def result(dummy_blueprint):
    return StubModificationAttack().apply(dummy_blueprint)


class TestStubModification:
    def test_exactly_three_bytes_changed(self, result):
        assert result.bytes_changed == 3

    def test_changes_inside_dos_region(self, result):
        assert all(off < result.original.e_lfanew
                   for off in result.modified_offsets)

    def test_message_rewritten(self, result):
        stub = result.infected.file_bytes[:result.infected.e_lfanew]
        assert b"CHK mode" in stub
        assert b"DOS mode" not in stub

    def test_rest_of_file_identical(self, result):
        e = result.original.e_lfanew
        assert result.infected.file_bytes[e:] == result.original.file_bytes[e:]

    def test_expected_regions(self, result):
        assert result.expected_regions == ("IMAGE_DOS_HEADER",)

    def test_alignment_preserved(self, result):
        assert len(result.infected.file_bytes) == \
            len(result.original.file_bytes)
        assert result.infected.e_lfanew == result.original.e_lfanew

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StubModificationAttack(old=b"DOS", new=b"HACK")

    def test_missing_needle_raises(self, dummy_blueprint):
        with pytest.raises(AttackError, match="not found"):
            StubModificationAttack(old=b"XYZ", new=b"ABC").apply(
                dummy_blueprint)

    def test_custom_replacement(self, dummy_blueprint):
        result = StubModificationAttack(old=b"run", new=b"pwn").apply(
            dummy_blueprint)
        assert b"pwn" in result.infected.file_bytes[:result.infected.e_lfanew]
