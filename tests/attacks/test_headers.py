"""Unit tests for the header-field attack extensions."""

import struct

import pytest

from repro.attacks.headers import (EntryPointRedirectAttack,
                                   SectionCharacteristicsAttack,
                                   TimestampForgeryAttack)
from repro.errors import AttackError
from repro.pe import PEImage, map_file_to_memory


class TestCharacteristicsFlip:
    def test_four_bytes_or_fewer_changed(self, hal_blueprint):
        result = SectionCharacteristicsAttack().apply(hal_blueprint)
        assert 1 <= result.bytes_changed <= 4

    def test_text_becomes_writable(self, hal_blueprint):
        result = SectionCharacteristicsAttack().apply(hal_blueprint)
        pe = PEImage(bytes(map_file_to_memory(result.infected.file_bytes)))
        assert pe.section(".text").is_writable
        assert pe.section(".text").is_executable

    def test_code_bytes_untouched(self, hal_blueprint):
        result = SectionCharacteristicsAttack().apply(hal_blueprint)
        text = hal_blueprint.section(".text")
        lo, hi = text.pointer_to_raw_data, \
            text.pointer_to_raw_data + text.size_of_raw_data
        assert result.original.file_bytes[lo:hi] == \
            result.infected.file_bytes[lo:hi]

    def test_missing_section(self, hal_blueprint):
        with pytest.raises(AttackError):
            SectionCharacteristicsAttack(section=".ghost").apply(
                hal_blueprint)

    def test_expected_regions(self, hal_blueprint):
        result = SectionCharacteristicsAttack().apply(hal_blueprint)
        assert result.expected_regions == ("SECTION_HEADER[.text]",)


class TestEntryPointRedirect:
    def test_entry_points_at_cave(self, hal_blueprint):
        result = EntryPointRedirectAttack().apply(hal_blueprint)
        pe = PEImage(bytes(map_file_to_memory(result.infected.file_bytes)))
        assert pe.optional_header.address_of_entry_point == \
            result.details["new_entry_rva"]
        assert pe.optional_header.address_of_entry_point != \
            result.original.optional_header.address_of_entry_point

    def test_payload_jumps_back_to_original_entry(self, hal_blueprint):
        attack = EntryPointRedirectAttack()
        result = attack.apply(hal_blueprint)
        text = result.original.section(".text")
        raw = text.pointer_to_raw_data
        cave = result.details["cave_offset"]
        data = result.infected.file_bytes
        jmp_at = cave + len(attack.payload)
        assert data[raw + jmp_at] == 0xE9
        rel = struct.unpack_from("<i", data, raw + jmp_at + 1)[0]
        target_rva = text.virtual_address + jmp_at + 5 + rel
        assert target_rva == result.details["original_entry_rva"]

    def test_expected_regions(self, hal_blueprint):
        result = EntryPointRedirectAttack().apply(hal_blueprint)
        assert set(result.expected_regions) == \
            {"IMAGE_OPTIONAL_HEADER", ".text"}


class TestTimestampForgery:
    def test_timestamp_changed(self, hal_blueprint):
        result = TimestampForgeryAttack(0x12345678).apply(hal_blueprint)
        pe = PEImage(bytes(map_file_to_memory(result.infected.file_bytes)))
        assert pe.file_header.time_date_stamp == 0x12345678

    def test_exactly_timestamp_bytes_changed(self, hal_blueprint):
        result = TimestampForgeryAttack().apply(hal_blueprint)
        off = hal_blueprint.e_lfanew + 8
        assert all(off <= o < off + 4 for o in result.modified_offsets)

    def test_identity_forge_rejected(self, hal_blueprint):
        original = hal_blueprint.file_header.time_date_stamp
        with pytest.raises(AttackError):
            TimestampForgeryAttack(original).apply(hal_blueprint)

    def test_defeats_fingerprint_matching(self, hal_blueprint):
        """Timestomping also breaks the carver's clone fingerprint —
        a detectable inconsistency in itself."""
        from repro.core.carver import module_fingerprint
        result = TimestampForgeryAttack().apply(hal_blueprint)
        a = bytes(map_file_to_memory(result.original.file_bytes))
        b = bytes(map_file_to_memory(result.infected.file_bytes))
        assert module_fingerprint(a) != module_fingerprint(b)


class TestEndToEndSignatures:
    @pytest.mark.parametrize("attack_cls,expected", [
        (SectionCharacteristicsAttack, {"SECTION_HEADER[.text]"}),
        (EntryPointRedirectAttack, {"IMAGE_OPTIONAL_HEADER", ".text"}),
        (TimestampForgeryAttack, {"IMAGE_NT_HEADER"}),
    ])
    def test_detected_with_exact_signature(self, attack_cls, expected):
        from repro.cloud import build_testbed
        from repro.core import ModChecker
        from repro.guest import build_catalog
        catalog = build_catalog(seed=42)
        result = attack_cls().apply(catalog["hal.dll"])
        tb = build_testbed(4, seed=42,
                           infected={"Dom2": {"hal.dll": result.infected}})
        report = ModChecker(tb.hypervisor,
                            tb.profile).check_pool("hal.dll").report
        assert report.flagged() == ["Dom2"]
        assert set(report.mismatched_regions("Dom2")) == expected
