"""Unit tests for the attack registry."""

import pytest

from repro.attacks import (ATTACKS, EXPERIMENTS, Attack, InfectionResult,
                           attack_for_experiment, make_attack,
                           register_attack)


class TestRegistry:
    def test_all_four_techniques_present(self):
        assert set(ATTACKS) >= {"opcode-replacement", "inline-hook",
                                "stub-modification", "dll-injection"}

    def test_experiment_mapping_matches_paper(self):
        assert EXPERIMENTS["E1"] == ("opcode-replacement", "hal.dll")
        assert EXPERIMENTS["E2"] == ("inline-hook", "hal.dll")
        assert EXPERIMENTS["E3"] == ("stub-modification", "dummy.sys")
        assert EXPERIMENTS["E4"] == ("dll-injection", "dummy.sys")

    def test_make_attack(self):
        attack = make_attack("inline-hook")
        assert isinstance(attack, Attack)
        assert attack.name == "inline-hook"

    def test_unknown_attack(self):
        with pytest.raises(KeyError, match="unknown attack"):
            make_attack("quantum-entangle")

    def test_attack_for_experiment_case_insensitive(self):
        attack, module = attack_for_experiment("e1")
        assert attack.name == "opcode-replacement"
        assert module == "hal.dll"

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            attack_for_experiment("E9")

    def test_register_custom(self):
        class NopAttack(Attack):
            name = "nop-test-attack"

            def apply(self, blueprint):
                return InfectionResult(self.name, blueprint, blueprint,
                                       (), ())

        register_attack("nop-test-attack", NopAttack)
        try:
            assert make_attack("nop-test-attack").name == "nop-test-attack"
            with pytest.raises(ValueError, match="already registered"):
                register_attack("nop-test-attack", NopAttack)
        finally:
            del ATTACKS["nop-test-attack"]
