"""Unit tests for E2 — inline hooking."""

import struct

import pytest

from repro.attacks.inline_hook import DEFAULT_PAYLOAD, InlineHookAttack
from repro.errors import NoOpcodeCave
from repro.pe import build_driver


@pytest.fixture(scope="module")
def result(hal_blueprint):
    return InlineHookAttack().apply(hal_blueprint)


def _text_bytes(blueprint, file_bytes):
    text = blueprint.section(".text")
    return file_bytes[text.pointer_to_raw_data:
                      text.pointer_to_raw_data + text.size_of_raw_data]


class TestInlineHook:
    def test_entry_starts_with_jmp_to_cave(self, result):
        text = _text_bytes(result.original, result.infected.file_bytes)
        victim = result.original.entry_function()
        assert text[victim.offset] == 0xE9
        rel = struct.unpack_from("<i", text, victim.offset + 1)[0]
        assert victim.offset + 5 + rel == result.details["cave_offset"]

    def test_payload_in_cave(self, result):
        text = _text_bytes(result.original, result.infected.file_bytes)
        cave = result.details["cave_offset"]
        assert text[cave:cave + len(DEFAULT_PAYLOAD)] == DEFAULT_PAYLOAD

    def test_overwritten_instructions_preserved_in_cave(self, result):
        orig_text = _text_bytes(result.original, result.original.file_bytes)
        new_text = _text_bytes(result.original, result.infected.file_bytes)
        victim = result.original.entry_function()
        saved_len = result.details["saved_instruction_bytes"]
        cave = result.details["cave_offset"]
        saved_at = cave + len(DEFAULT_PAYLOAD)
        assert new_text[saved_at:saved_at + saved_len] == \
            orig_text[victim.offset:victim.offset + saved_len]

    def test_cave_ends_with_jmp_back(self, result):
        text = _text_bytes(result.original, result.infected.file_bytes)
        victim = result.original.entry_function()
        saved_len = result.details["saved_instruction_bytes"]
        jmp_at = (result.details["cave_offset"] + len(DEFAULT_PAYLOAD)
                  + saved_len)
        assert text[jmp_at] == 0xE9
        rel = struct.unpack_from("<i", text, jmp_at + 1)[0]
        assert jmp_at + 5 + rel == victim.offset + saved_len

    def test_only_text_modified(self, result):
        text = result.original.section(".text")
        lo = text.pointer_to_raw_data
        hi = lo + text.size_of_raw_data
        assert all(lo <= off < hi for off in result.modified_offsets)

    def test_expected_regions(self, result):
        assert result.expected_regions == (".text",)

    def test_cave_was_large_enough(self, result):
        needed = (len(DEFAULT_PAYLOAD)
                  + result.details["saved_instruction_bytes"] + 5)
        assert result.details["cave_size"] >= needed

    def test_custom_victim_function(self, hal_blueprint):
        result = InlineHookAttack(victim_function="fn_002").apply(
            hal_blueprint)
        assert result.details["victim"] == "fn_002"

    def test_custom_payload(self, hal_blueprint):
        payload = b"\xCC" * 10
        result = InlineHookAttack(payload=payload).apply(hal_blueprint)
        text = _text_bytes(result.original, result.infected.file_bytes)
        cave = result.details["cave_offset"]
        assert text[cave:cave + 10] == payload

    def test_no_cave_raises(self):
        # A payload larger than any cave the generator makes.
        bp = build_driver("tiny.sys", seed=2, n_functions=2, imports=())
        attack = InlineHookAttack(payload=b"\x90" * 4096)
        with pytest.raises(NoOpcodeCave):
            attack.apply(bp)
