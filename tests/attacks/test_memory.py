"""Unit tests for memory-resident attacks (and the IAT blind spot)."""

import struct

import pytest

from repro.attacks.memory import (IATHookAttack, RuntimeCodePatchAttack)
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.errors import AttackError
from repro.pe import build_driver


@pytest.fixture
def tb():
    return build_testbed(4, seed=42)


class TestIATHook:
    def test_slot_overwritten(self, tb):
        kernel = tb.hypervisor.domain("Dom2").kernel
        bp = tb.catalog["hal.dll"]
        result = IATHookAttack().apply(kernel, bp)
        va = result.details["slot_va"]
        got = struct.unpack("<I", kernel.aspace.read(va, 4))[0]
        assert got == result.details["hooked_to"]
        assert got != result.details["original"]

    def test_file_untouched(self, tb):
        kernel = tb.hypervisor.domain("Dom2").kernel
        bp = tb.catalog["hal.dll"]
        before = bp.file_bytes
        IATHookAttack().apply(kernel, bp)
        assert bp.file_bytes == before

    def test_blind_spot_is_real(self, tb):
        """Documented limitation: IAT lives in .rdata, which ModChecker
        (like the paper's tool) does not hash — no alarm fires."""
        kernel = tb.hypervisor.domain("Dom2").kernel
        result = IATHookAttack().apply(kernel, tb.catalog["hal.dll"])
        assert result.expected_regions == ()
        mc = ModChecker(tb.hypervisor, tb.profile)
        assert mc.check_pool("hal.dll").report.all_clean

    def test_module_without_imports_rejected(self, tb):
        kernel = tb.hypervisor.domain("Dom2").kernel
        bp = build_driver("noimp.sys", seed=9, imports=())
        kernel.load_module(bp)
        with pytest.raises(AttackError, match="imports nothing"):
            IATHookAttack().apply(kernel, bp)

    def test_slot_index_selects_import(self, tb):
        kernel = tb.hypervisor.domain("Dom3").kernel
        bp = tb.catalog["hal.dll"]
        r0 = IATHookAttack(slot_index=0).apply(kernel, bp)
        r1 = IATHookAttack(slot_index=1).apply(kernel, bp)
        assert r0.details["import"] != r1.details["import"]


class TestRuntimeCodePatch:
    def test_memory_changed_file_untouched(self, tb):
        kernel = tb.hypervisor.domain("Dom2").kernel
        bp = tb.catalog["hal.dll"]
        result = RuntimeCodePatchAttack().apply(kernel, bp)
        va = result.details["va"]
        assert kernel.aspace.read(va, 2) == b"\xEB\xFE"
        assert bp.file_bytes == tb.catalog["hal.dll"].file_bytes

    def test_detected_as_text_mismatch(self, tb):
        kernel = tb.hypervisor.domain("Dom2").kernel
        RuntimeCodePatchAttack().apply(kernel, tb.catalog["hal.dll"])
        mc = ModChecker(tb.hypervisor, tb.profile)
        report = mc.check_pool("hal.dll").report
        assert report.flagged() == ["Dom2"]
        assert report.mismatched_regions("Dom2") == (".text",)

    def test_patch_beyond_text_rejected(self, tb):
        kernel = tb.hypervisor.domain("Dom2").kernel
        bp = tb.catalog["hal.dll"]
        attack = RuntimeCodePatchAttack(
            offset_in_text=bp.section(".text").virtual_size)
        with pytest.raises(AttackError):
            attack.apply(kernel, bp)

    def test_custom_patch_bytes(self, tb):
        kernel = tb.hypervisor.domain("Dom2").kernel
        result = RuntimeCodePatchAttack(
            offset_in_text=0x40, patch=b"\xCC\xCC\xCC").apply(
                kernel, tb.catalog["hal.dll"])
        assert kernel.aspace.read(result.details["va"], 3) == b"\xCC" * 3
