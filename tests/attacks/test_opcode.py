"""Unit tests for E1 — single opcode replacement."""

import pytest

from repro.attacks.opcode import SUB_ECX_1, OpcodeReplacementAttack
from repro.errors import AttackError
from repro.pe import PEImage, map_file_to_memory
from repro.pe.codegen import PROLOGUE


@pytest.fixture(scope="module")
def result(hal_blueprint):
    return OpcodeReplacementAttack().apply(hal_blueprint)


class TestOpcodeReplacement:
    def test_exactly_three_bytes_changed(self, result):
        assert result.bytes_changed <= 3
        assert result.bytes_changed >= 1

    def test_changed_bytes_inside_text_raw(self, result):
        text = result.original.section(".text")
        lo = text.pointer_to_raw_data
        hi = lo + text.size_of_raw_data
        assert all(lo <= off < hi for off in result.modified_offsets)

    def test_new_instruction_in_place(self, result):
        entry = result.original.entry_function()
        text = result.original.section(".text")
        off = text.pointer_to_raw_data + entry.offset + len(PROLOGUE)
        assert result.infected.file_bytes[off:off + 3] == SUB_ECX_1

    def test_file_length_unchanged(self, result):
        assert len(result.infected.file_bytes) == \
            len(result.original.file_bytes)

    def test_headers_unchanged(self, result):
        n = result.original.optional_header.size_of_headers
        assert result.infected.file_bytes[:n] == \
            result.original.file_bytes[:n]

    def test_expected_regions(self, result):
        assert result.expected_regions == (".text",)

    def test_infected_file_still_parses(self, result):
        pe = PEImage(bytes(map_file_to_memory(result.infected.file_bytes)))
        assert [s.name for s in pe.sections] == \
            [s.name for s in result.original.sections]

    def test_original_untouched(self, hal_blueprint, result):
        assert result.original.file_bytes == hal_blueprint.file_bytes

    def test_missing_opcode_raises(self, hal_blueprint):
        import dataclasses
        # Corrupt the planted DEC ECX so the attack can't find it.
        data = bytearray(hal_blueprint.file_bytes)
        entry = hal_blueprint.entry_function()
        text = hal_blueprint.section(".text")
        off = text.pointer_to_raw_data + entry.offset + len(PROLOGUE)
        data[off] = 0x90
        broken = dataclasses.replace(hal_blueprint, file_bytes=bytes(data))
        with pytest.raises(AttackError, match="expected DEC ECX"):
            OpcodeReplacementAttack().apply(broken)

    def test_details_recorded(self, result):
        assert result.details["old_opcode"] == "49"
        assert result.details["new_opcode"] == "83E901"
        assert result.attack_name == "opcode-replacement"
