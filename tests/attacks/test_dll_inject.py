"""Unit tests for E4 — DLL injection via PE-header modification."""

import pytest

from repro.attacks.dll_inject import (INJECT_DLL_NAME, INJECT_EXPORT,
                                      NEW_SECTION_NAME, DllInjectionAttack)
from repro.pe import PEImage, map_file_to_memory
from repro.pe.constants import DIR_BASERELOC, DIR_IMPORT
from repro.pe.relocations import parse_reloc_section


@pytest.fixture(scope="module")
def result(dummy_blueprint):
    return DllInjectionAttack().apply(dummy_blueprint)


@pytest.fixture(scope="module")
def infected_pe(result):
    return PEImage(bytes(map_file_to_memory(result.infected.file_bytes)))


class TestHeaderSurgery:
    def test_extra_section_added(self, result, infected_pe):
        names = [s.name for s in infected_pe.sections]
        assert names[-1] == NEW_SECTION_NAME
        assert len(names) == len(result.original.sections) + 1

    def test_number_of_sections_incremented(self, result, infected_pe):
        assert infected_pe.file_header.number_of_sections == \
            result.original.file_header.number_of_sections + 1

    def test_text_virtual_size_grew(self, result, infected_pe):
        old = result.original.section(".text").virtual_size
        assert infected_pe.section(".text").virtual_size == \
            old + result.details["blob_bytes"]

    def test_subsequent_sections_shifted(self, result, infected_pe):
        shift = result.details["va_shift"]
        assert shift >= 0x1000
        for old in result.original.sections[1:]:
            new = infected_pe.section(old.name)
            assert new.virtual_address == old.virtual_address + shift

    def test_size_of_image_grew(self, result, infected_pe):
        assert infected_pe.optional_header.size_of_image > \
            result.original.optional_header.size_of_image

    def test_import_directory_shifted(self, result, infected_pe):
        old = result.original.optional_header.data_directories[DIR_IMPORT]
        new = infected_pe.optional_header.data_directories[DIR_IMPORT]
        assert new.virtual_address == \
            old.virtual_address + result.details["va_shift"]

    def test_dos_header_untouched(self, result):
        e = result.original.e_lfanew
        assert result.infected.file_bytes[:e] == \
            result.original.file_bytes[:e]


class TestInjectedContent:
    def test_inject_dll_markers_present(self, result, infected_pe):
        text = infected_pe.section_data(".text")
        assert INJECT_DLL_NAME.encode() in text
        assert INJECT_EXPORT.encode() in text

    def test_entry_hooked_into_blob(self, result, infected_pe):
        import struct
        text = infected_pe.section_data(".text")
        entry = result.original.entry_function()
        assert text[entry.offset] == 0xE9
        rel = struct.unpack_from("<i", text, entry.offset + 1)[0]
        target = entry.offset + 5 + rel
        old_vsize = result.original.section(".text").virtual_size
        assert target == old_vsize            # start of the blob

    def test_new_section_names_inject_dll(self, infected_pe):
        data = infected_pe.section_data(NEW_SECTION_NAME)
        assert INJECT_DLL_NAME.encode() in data


class TestRelocationCoherence:
    def test_reloc_rvas_shifted(self, result, infected_pe):
        shift = result.details["va_shift"]
        boundary = result.original.sections[1].virtual_address
        old = parse_reloc_section(
            result.original.file_bytes[
                result.original.section(".reloc").pointer_to_raw_data:
                result.original.section(".reloc").pointer_to_raw_data
                + result.original.section(".reloc").virtual_size])
        new = parse_reloc_section(infected_pe.section_data(".reloc"))
        expected = sorted(r + shift if r >= boundary else r for r in old)
        assert new == expected

    def test_reloc_directory_updated(self, result, infected_pe):
        d = infected_pe.optional_header.data_directories[DIR_BASERELOC]
        assert d.virtual_address == \
            infected_pe.section(".reloc").virtual_address

    def test_infected_driver_still_loads(self, result):
        """The whole point of coherent surgery: the guest boots it."""
        from repro.guest import GuestKernel, build_catalog
        catalog = dict(build_catalog(seed=42))
        catalog["dummy.sys"] = result.infected
        kernel = GuestKernel("victim", seed=5)
        kernel.boot(catalog)
        image = kernel.read_module_image("dummy.sys")
        pe = PEImage(image)
        assert NEW_SECTION_NAME in [s.name for s in pe.sections]


class TestExpectations:
    def test_expected_regions_cover_paper_signature(self, result):
        expected = set(result.expected_regions)
        assert "IMAGE_NT_HEADER" in expected
        assert "IMAGE_OPTIONAL_HEADER" in expected
        assert ".text" in expected
        for sec in result.original.sections:
            assert f"SECTION_HEADER[{sec.name}]" in expected

    def test_too_small_blob_rejected(self):
        with pytest.raises(ValueError, match="exceed one page"):
            DllInjectionAttack(min_inject_size=0x800)
