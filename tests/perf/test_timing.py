"""Unit tests for timing records."""

import pytest

from repro.perf.timing import ComponentTimings, RunTiming


class TestComponentTimings:
    def test_total(self):
        t = ComponentTimings(searcher=1.0, parser=0.5, checker=0.25)
        assert t.total == pytest.approx(1.75)

    def test_addition(self):
        a = ComponentTimings(1, 2, 3)
        b = ComponentTimings(10, 20, 30)
        c = a + b
        assert (c.searcher, c.parser, c.checker) == (11, 22, 33)

    def test_as_dict(self):
        t = ComponentTimings(1, 2, 3)
        d = t.as_dict()
        assert d == {"searcher": 1, "parser": 2, "checker": 3, "total": 6}


class TestRunTiming:
    def test_row(self):
        rt = RunTiming(n_vms=5, loaded=True,
                       timings=ComponentTimings(1, 2, 3))
        assert rt.row() == (5, 1, 2, 3, 6)
