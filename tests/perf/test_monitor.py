"""Unit tests for the in-guest resource monitor (Fig. 9 machinery)."""

import pytest

from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.hypervisor.clock import SimClock
from repro.guest import GuestKernel
from repro.hypervisor.domain import Domain, DomainKind
from repro.perf.monitor import GuestResourceMonitor
from repro.perf.workload import HEAVY_LOAD, apply_workload


def _domain(name="mon"):
    kernel = GuestKernel(name, seed=1)
    kernel.boot({})
    return Domain(domid=1, name=name, kind=DomainKind.DOMU, kernel=kernel)


class TestSampling:
    def test_idle_guest_mostly_idle_cpu(self):
        monitor = GuestResourceMonitor(_domain(), SimClock(), seed=1)
        samples = [monitor.sample() for _ in range(50)]
        mean_idle = sum(s.cpu_idle_pct for s in samples) / 50
        assert mean_idle > 90

    def test_loaded_guest_busy_cpu(self):
        domain = _domain()
        apply_workload(domain, HEAVY_LOAD)
        monitor = GuestResourceMonitor(domain, SimClock(), seed=1)
        sample = monitor.sample()
        assert sample.cpu_idle_pct < 20
        assert sample.cpu_user_pct > 60
        assert sample.page_faults_per_s > 400

    def test_samples_carry_clock_time(self):
        clock = SimClock()
        monitor = GuestResourceMonitor(_domain(), clock, seed=1)
        monitor.sample()
        clock.advance(5.0)
        monitor.sample()
        times = [s.t for s in monitor.trace.samples]
        assert times == [0.0, 5.0]

    def test_deterministic_given_seed(self):
        a = GuestResourceMonitor(_domain(), SimClock(), seed=3).sample()
        b = GuestResourceMonitor(_domain(), SimClock(), seed=3).sample()
        assert a == b


class TestRun:
    def test_run_samples_at_interval(self):
        clock = SimClock()
        monitor = GuestResourceMonitor(_domain(), clock, seed=1)
        trace = monitor.run(duration=10.0, interval=1.0)
        assert len(trace.samples) >= 10

    def test_events_recorded_as_windows(self):
        clock = SimClock()
        monitor = GuestResourceMonitor(_domain(), clock, seed=1)
        trace = monitor.run(duration=10.0, interval=1.0,
                            events=[(3.0, lambda: clock.advance(0.5)),
                                    (7.0, lambda: clock.advance(0.25))])
        assert len(trace.introspection_windows) == 2
        (s0, e0), (s1, e1) = trace.introspection_windows
        assert e0 - s0 == pytest.approx(0.5)
        assert e1 - s1 == pytest.approx(0.25)

    def test_invalid_interval(self):
        monitor = GuestResourceMonitor(_domain(), SimClock(), seed=1)
        with pytest.raises(ValueError):
            monitor.run(duration=1.0, interval=0)


class TestPerturbationAnalysis:
    def test_out_of_vm_introspection_no_perturbation(self):
        """The paper's Fig. 9 claim, end to end on a real testbed."""
        tb = build_testbed(3, seed=42)
        mc = ModChecker(tb.hypervisor, tb.profile)
        domain = tb.hypervisor.domain("Dom1")
        monitor = GuestResourceMonitor(domain, tb.clock, seed=1)
        def check():
            return mc.check_pool("hal.dll")
        trace = monitor.run(duration=60.0, interval=0.5,
                            events=[(10.0, check), (30.0, check),
                                    (50.0, check)])
        assert len(trace.introspection_windows) == 3
        for attr in ("cpu_idle_pct", "mem_free_physical_pct"):
            assert trace.perturbation(attr) < 3.0, attr

    def test_in_guest_agent_perturbs(self):
        """Contrast: an in-guest scanner consuming CPU *is* visible —
        the monitor machinery is sensitive enough to matter."""
        clock = SimClock()
        domain = _domain()
        monitor = GuestResourceMonitor(domain, clock, seed=1,
                                       agent_overhead=0.0)
        def in_guest_scan():
            monitor.agent_overhead = 0.35
            clock.advance(2.0)
            monitor.sample()
            monitor.agent_overhead = 0.0
        trace = monitor.run(duration=40.0, interval=0.5,
                            events=[(10.0, in_guest_scan),
                                    (25.0, in_guest_scan)])
        assert trace.perturbation("cpu_idle_pct") > 3.0

    def test_series_extraction(self):
        monitor = GuestResourceMonitor(_domain(), SimClock(), seed=1)
        trace = monitor.run(duration=5.0, interval=1.0)
        t, v = trace.series("cpu_idle_pct")
        assert len(t) == len(v) == len(trace.samples)

    def test_perturbation_without_windows_is_zero(self):
        monitor = GuestResourceMonitor(_domain(), SimClock(), seed=1)
        trace = monitor.run(duration=5.0, interval=1.0)
        assert trace.perturbation("cpu_idle_pct") == 0.0


class TestLoadVisibility:
    def test_monitor_reflects_heavyload(self):
        """Sanity of the in-guest sensor model: HeavyLoad shows up in
        every series the paper's tool records."""
        from repro.perf.workload import HEAVY_LOAD, apply_workload, \
            clear_workload
        domain = _domain("loady")
        monitor = GuestResourceMonitor(domain, SimClock(), seed=5)
        idle = monitor.sample()
        apply_workload(domain, HEAVY_LOAD)
        busy = monitor.sample()
        clear_workload(domain)
        recovered = monitor.sample()
        assert busy.cpu_idle_pct < idle.cpu_idle_pct - 50
        assert busy.page_faults_per_s > idle.page_faults_per_s * 5
        assert busy.disk_queue_length > idle.disk_queue_length
        assert busy.mem_free_physical_pct < idle.mem_free_physical_pct
        assert recovered.cpu_idle_pct > 90
