"""Unit tests for the cost model."""

from repro.perf.costmodel import DEFAULT_COST_MODEL, CostModel


class TestCostModel:
    def test_page_map_dominates(self):
        """The paper's observation: foreign mapping is the expensive
        primitive, so Module-Searcher dominates runtime."""
        c = DEFAULT_COST_MODEL
        assert c.page_map > c.translate_walk > c.small_read

    def test_local_processing_cheaper_than_mapping_per_page(self):
        c = DEFAULT_COST_MODEL
        per_page_local = 4096 * (c.parse_per_byte + c.hash_per_byte
                                 + c.rva_scan_per_byte)
        assert per_page_local < c.page_map

    def test_searcher_page_cost_composition(self):
        c = CostModel()
        full = c.searcher_page_cost(translated=True, mapped=True)
        cached = c.searcher_page_cost(translated=False, mapped=False)
        assert full == c.small_read + c.translate_walk + c.page_map
        assert cached == c.small_read

    def test_frozen(self):
        import dataclasses
        import pytest
        with pytest.raises(dataclasses.FrozenInstanceError):
            CostModel().page_map = 0.0

    def test_custom_model(self):
        c = CostModel(page_map=1.0)
        assert c.searcher_page_cost(translated=False, mapped=True) > 1.0
