"""Unit tests for workload profiles."""

import pytest

from repro.guest import GuestKernel
from repro.hypervisor.domain import Domain, DomainKind
from repro.perf.workload import (CPU_ONLY, HEAVY_LOAD, IDLE, Workload,
                                 apply_workload, clear_workload)


@pytest.fixture
def domain():
    kernel = GuestKernel("w", seed=1)
    kernel.boot({})
    return Domain(domid=1, name="w", kind=DomainKind.DOMU, kernel=kernel)


class TestWorkload:
    def test_heavyload_stresses_everything(self):
        assert HEAVY_LOAD.cpu == 1.0
        assert HEAVY_LOAD.mem > 0 and HEAVY_LOAD.disk > 0

    def test_idle_is_zero(self):
        assert (IDLE.cpu, IDLE.mem, IDLE.disk) == (0, 0, 0)

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            Workload("bad", cpu=1.5)

    def test_apply_sets_domain_knobs(self, domain):
        apply_workload(domain, HEAVY_LOAD)
        assert domain.cpu_load == 1.0
        assert domain.mem_load == HEAVY_LOAD.mem
        assert domain.tags["workload"] == "heavyload"

    def test_clear_resets(self, domain):
        apply_workload(domain, HEAVY_LOAD)
        clear_workload(domain)
        assert domain.cpu_load == 0.0
        assert domain.tags["workload"] == "idle"

    def test_cpu_only_leaves_memory_idle(self, domain):
        apply_workload(domain, CPU_ONLY)
        assert domain.cpu_load == 1.0 and domain.mem_load == 0.0
