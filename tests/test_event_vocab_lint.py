"""Tests for tools/check_event_vocab.py on the tree and synthetic logs."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

_TOOL = Path(__file__).resolve().parent.parent / "tools" \
    / "check_event_vocab.py"
spec = importlib.util.spec_from_file_location("event_vocab", _TOOL)
vocab_lint = importlib.util.module_from_spec(spec)
spec.loader.exec_module(vocab_lint)


class TestSourceTree:
    def test_repo_sources_are_in_vocabulary(self):
        problems, used = vocab_lint.lint_sources(
            Path(__file__).resolve().parent.parent / "src")
        assert problems == []
        # closed both ways: nothing outside a vocabulary is used, and
        # every vocabulary name has a live literal call site
        assert used["emit"] == set(vocab_lint.EVENT_NAMES)
        assert used["span"] == set(vocab_lint.SPAN_NAMES)
        assert used["charge"] == set(vocab_lint.OP_NAMES)

    def test_rogue_emit_site_is_caught(self, tmp_path):
        rogue = tmp_path / "rogue.py"
        rogue.write_text('log.emit("check.start")\n'
                         'log.emit("totally.madeup", vm="Dom1")\n')
        problems, used = vocab_lint.lint_sources(tmp_path)
        assert len(problems) == 1
        assert "totally.madeup" in problems[0]
        assert "rogue.py:2" in problems[0]
        assert "check.start" in used["emit"]

    def test_rogue_span_and_charge_sites_are_caught(self, tmp_path):
        rogue = tmp_path / "rogue.py"
        rogue.write_text('with tracer.span(\n'
                         '        "bogus.stage", vm="Dom1"):\n'
                         '    tracer.charge("page_fax", 0.1)\n'
                         'tracer.charge("page_copy", 0.1)\n')
        problems, used = vocab_lint.lint_sources(tmp_path)
        assert len(problems) == 2
        assert any("bogus.stage" in p and "rogue.py:1" in p
                   for p in problems)
        assert any("page_fax" in p for p in problems)
        assert "page_copy" in used["charge"]

    def test_docstring_tables_are_complete(self):
        assert vocab_lint.lint_docstring_tables() == []


class TestJsonlLogs:
    def _write(self, tmp_path, docs):
        path = tmp_path / "audit.jsonl"
        path.write_text("".join(json.dumps(d) + "\n" for d in docs))
        return path

    def test_valid_log_passes(self, tmp_path):
        path = self._write(tmp_path, [
            {"t": 0.0, "seq": 0, "event": "daemon.cycle"},
            {"t": 1.0, "seq": 1, "event": "check.start",
             "check_id": "chk-000001", "attrs": {"module": "hal.dll"}},
        ])
        assert vocab_lint.lint_jsonl(path) == []

    def test_out_of_vocabulary_record_fails(self, tmp_path):
        path = self._write(tmp_path, [
            {"t": 0.0, "seq": 0, "event": "not.a.thing"},
        ])
        problems = vocab_lint.lint_jsonl(path)
        assert len(problems) == 1 and "not.a.thing" in problems[0]

    def test_missing_required_keys_and_bad_json_fail(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        path.write_text('{"event": "daemon.cycle"}\nnot json\n')
        problems = vocab_lint.lint_jsonl(path)
        assert any("missing 't'" in p for p in problems)
        assert any("missing 'seq'" in p for p in problems)
        assert any("not JSON" in p for p in problems)

    def test_main_exit_codes(self, tmp_path, capsys):
        good = self._write(tmp_path, [
            {"t": 0.0, "seq": 0, "event": "alert.raised"}])
        assert vocab_lint.main([str(good)]) == 0
        assert "1 log(s) checked" in capsys.readouterr().out
        assert vocab_lint.main([str(tmp_path / "missing.jsonl")]) == 1
        assert "no such audit log" in capsys.readouterr().out
