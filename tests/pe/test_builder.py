"""Unit tests for the PE driver builder."""

import struct

import pytest

from repro.errors import PEBuildError
from repro.pe import constants as C
from repro.pe.builder import PEBuilder, build_driver
from repro.pe.checksum import pe_checksum
from repro.pe.parser import PEImage, map_file_to_memory
from repro.pe.relocations import parse_reloc_section
from repro.pe.structures import DosHeader


class TestFileStructure:
    def test_starts_with_mz(self, small_driver):
        assert small_driver.file_bytes[:2] == b"MZ"

    def test_pe_signature_at_e_lfanew(self, small_driver):
        e = small_driver.e_lfanew
        assert small_driver.file_bytes[e:e + 4] == b"PE\x00\x00"

    def test_dos_stub_message_present(self, small_driver):
        assert C.DOS_STUB_MESSAGE in small_driver.file_bytes[:small_driver.e_lfanew]

    def test_canonical_sections_in_order(self, small_driver):
        assert [s.name for s in small_driver.sections] == \
            list(C.CANONICAL_SECTIONS)

    def test_section_rvas_page_aligned_and_increasing(self, small_driver):
        rvas = [s.virtual_address for s in small_driver.sections]
        assert all(r % C.DEFAULT_SECTION_ALIGNMENT == 0 for r in rvas)
        assert rvas == sorted(rvas)
        assert all(b > a for a, b in zip(rvas, rvas[1:]))

    def test_raw_layout_contiguous(self, small_driver):
        cursor = small_driver.optional_header.size_of_headers
        for sec in small_driver.sections:
            assert sec.pointer_to_raw_data == cursor
            assert sec.size_of_raw_data % C.DEFAULT_FILE_ALIGNMENT == 0
            cursor += sec.size_of_raw_data
        assert cursor == len(small_driver.file_bytes)

    def test_checksum_valid(self, small_driver):
        off = small_driver.e_lfanew + 4 + 20 + 64
        assert pe_checksum(small_driver.file_bytes, off) == \
            small_driver.optional_header.checksum

    def test_size_of_image_covers_all_sections(self, small_driver):
        last = small_driver.sections[-1]
        end = last.virtual_address + last.virtual_size
        size = small_driver.optional_header.size_of_image
        assert size >= end
        assert size % C.DEFAULT_SECTION_ALIGNMENT == 0

    def test_entry_point_inside_text(self, small_driver):
        text = small_driver.section(".text")
        ep = small_driver.optional_header.address_of_entry_point
        assert text.virtual_address <= ep < \
            text.virtual_address + text.virtual_size


class TestRelocations:
    def test_reloc_section_matches_fixups(self, small_driver):
        reloc = small_driver.section(".reloc")
        raw = small_driver.file_bytes[
            reloc.pointer_to_raw_data:
            reloc.pointer_to_raw_data + reloc.virtual_size]
        assert parse_reloc_section(raw) == small_driver.fixup_rvas

    def test_reloc_directory_points_at_reloc_section(self, small_driver):
        d = small_driver.optional_header.data_directories[C.DIR_BASERELOC]
        assert d.virtual_address == small_driver.section(".reloc").virtual_address
        assert d.size > 0

    def test_fixup_slots_hold_preferred_base_addresses(self, small_driver):
        image = map_file_to_memory(small_driver.file_bytes)
        base = small_driver.image_base
        size = small_driver.size_of_image
        for rva in small_driver.fixup_rvas:
            value = struct.unpack_from("<I", image, rva)[0]
            assert base <= value < base + size, hex(rva)

    def test_text_refs_recorded_as_fixups(self, small_driver):
        text_rva = small_driver.text_rva
        fixups = set(small_driver.fixup_rvas)
        for ref in small_driver.code_layout.refs:
            assert text_rva + ref.slot_offset in fixups


class TestImports:
    def test_import_directory_set(self, small_driver):
        d = small_driver.optional_header.data_directories[C.DIR_IMPORT]
        rdata = small_driver.section(".rdata")
        assert rdata.virtual_address <= d.virtual_address < \
            rdata.virtual_address + rdata.virtual_size

    def test_iat_slots_inside_rdata(self, small_driver):
        rdata = small_driver.section(".rdata")
        for _dll, _sym, rva in small_driver.iat_slots:
            assert rdata.virtual_address <= rva < \
                rdata.virtual_address + rdata.virtual_size

    def test_dll_names_embedded(self, small_driver):
        for spec in small_driver.imports:
            assert spec.dll.encode() in small_driver.file_bytes

    def test_symbol_names_embedded(self, small_driver):
        for spec in small_driver.imports:
            for sym in spec.symbols:
                assert sym.encode() in small_driver.file_bytes


class TestDeterminismAndVariation:
    def test_same_seed_same_bytes(self):
        a = build_driver("x.sys", seed=3)
        b = build_driver("x.sys", seed=3)
        assert a.file_bytes == b.file_bytes

    def test_name_changes_bytes(self):
        a = build_driver("x.sys", seed=3)
        b = build_driver("y.sys", seed=3)
        assert a.file_bytes != b.file_bytes

    def test_parses_as_memory_image(self, small_driver):
        pe = PEImage(bytes(map_file_to_memory(small_driver.file_bytes)))
        assert [s.name for s in pe.sections] == \
            [s.name for s in small_driver.sections]

    def test_functions_rva_inside_text(self, small_driver):
        text = small_driver.section(".text")
        for _name, rva, size in small_driver.functions_rva():
            assert text.virtual_address <= rva
            assert rva + size <= text.virtual_address + text.virtual_size

    def test_empty_name_rejected(self):
        with pytest.raises(PEBuildError):
            PEBuilder("")

    def test_dos_header_unpacks(self, small_driver):
        hdr = DosHeader.unpack(small_driver.file_bytes)
        assert hdr.e_lfanew == small_driver.e_lfanew
