"""Unit tests for import-table parsing."""

import struct

import pytest

from repro.errors import PEFormatError
from repro.pe import map_file_to_memory
from repro.pe.constants import DIR_IMPORT
from repro.pe.imports import parse_imports


class TestParseImports:
    def test_matches_builder_metadata(self, small_driver):
        image = bytes(map_file_to_memory(small_driver.file_bytes))
        d = small_driver.optional_header.data_directories[DIR_IMPORT]
        parsed = parse_imports(image, d.virtual_address, d.size)
        expected = [(dll, sym, rva) for dll, sym, rva
                    in small_driver.iat_slots]
        got = [(i.dll, i.symbol, i.iat_slot_rva) for i in parsed]
        assert got == expected

    def test_empty_directory(self):
        assert parse_imports(b"\x00" * 64, 0, 0) == []

    def test_survives_resolved_iat(self, small_driver, catalog):
        """After the loader overwrites the IAT, the OFT still names
        every import — the reason both arrays exist."""
        from repro.guest import GuestKernel
        kernel = GuestKernel("imp", seed=4)
        kernel.boot(catalog)
        image = kernel.read_module_image("hal.dll")
        bp = catalog["hal.dll"]
        d = bp.optional_header.data_directories[DIR_IMPORT]
        parsed = parse_imports(image, d.virtual_address, d.size)
        assert [(i.dll, i.symbol) for i in parsed] == \
            [(dll, sym) for dll, sym, _ in bp.iat_slots]

    def test_directory_outside_image_rejected(self):
        with pytest.raises(PEFormatError):
            parse_imports(b"\x00" * 16, 64, 20)

    def test_unterminated_descriptor_table_rejected(self, small_driver):
        image = bytearray(map_file_to_memory(small_driver.file_bytes))
        d = small_driver.optional_header.data_directories[DIR_IMPORT]
        # wipe the null terminator: table runs into garbage
        n_descs = len(small_driver.imports)
        term = d.virtual_address + 20 * n_descs
        image[term:term + 20] = b"\xFF" * 20
        with pytest.raises(PEFormatError):
            parse_imports(bytes(image), d.virtual_address, d.size)

    def test_ordinal_import(self):
        # hand-built: one descriptor, one ordinal thunk
        base = 0x100
        blob = bytearray(0x200)
        struct.pack_into("<IIIII", blob, base, base + 40, 0, 0,
                         base + 60, base + 48)
        struct.pack_into("<I", blob, base + 40, 0x8000_0007)  # OFT
        struct.pack_into("<I", blob, base + 48, 0x8000_0007)  # IAT
        blob[base + 60:base + 69] = b"ghost.sys"
        parsed = parse_imports(bytes(blob), base, 40)
        assert len(parsed) == 1
        assert parsed[0].dll == "ghost.sys"
        assert parsed[0].symbol == "#7"
        assert parsed[0].hint == 7
