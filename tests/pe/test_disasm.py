"""Tests for the instruction-length decoder.

The headline property: walking any generated function's bytes yields
exactly the instruction boundaries the code generator recorded — the
decoder and the generator agree on the ISA subset.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pe.codegen import generate_code
from repro.pe.disasm import (DisassemblyError, instruction_length,
                             instructions_covering, walk_instructions)


class TestInstructionLength:
    @pytest.mark.parametrize("code,length", [
        (b"\x90", 1),                     # nop
        (b"\x49", 1),                     # dec ecx
        (b"\x55", 1),                     # push ebp
        (b"\xC3", 1),                     # ret
        (b"\x60", 1),                     # pushad
        (b"\x8B\xEC", 2),                 # mov ebp, esp
        (b"\x33\xC0", 2),                 # xor eax, eax
        (b"\x85\xD2", 2),                 # test edx, edx
        (b"\x83\xE9\x01", 3),             # sub ecx, 1
        (b"\xA1\x00\x10\x00\xF7", 5),     # mov eax, [abs]
        (b"\xA3\x00\x10\x00\xF7", 5),     # mov [abs], eax
        (b"\x68\x78\x56\x34\x12", 5),     # push imm32
        (b"\xE8\x00\x00\x00\x00", 5),     # call rel32
        (b"\xE9\x00\x00\x00\x00", 5),     # jmp rel32
        (b"\xEB\xFE", 2),                 # jmp $
        (b"\xFF\x15\x00\x10\x00\xF7", 6), # call [abs]
        (b"\xFF\x25\x00\x10\x00\xF7", 6), # jmp [abs]
        (b"\x8B\x0D\x00\x10\x00\xF7", 6), # mov ecx, [abs]
    ])
    def test_known_encodings(self, code, length):
        assert instruction_length(code) == length

    def test_unknown_opcode_raises(self):
        with pytest.raises(DisassemblyError, match="unknown opcode"):
            instruction_length(b"\xF4")          # hlt: not in subset

    def test_truncated_raises(self):
        with pytest.raises(DisassemblyError):
            instruction_length(b"\x8B")

    def test_offset_past_end_raises(self):
        with pytest.raises(DisassemblyError):
            instruction_length(b"\x90", 5)


class TestWalk:
    def test_simple_sequence(self):
        code = b"\x55\x8B\xEC\x90\x5D\xC3"
        assert walk_instructions(code, 0, len(code)) == [0, 1, 3, 4, 5]

    def test_desync_detected(self):
        code = b"\xE8\x00\x00\x00"           # truncated call
        with pytest.raises(DisassemblyError):
            walk_instructions(code, 0, len(code))

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_decoder_matches_codegen_ground_truth(self, seed):
        """Every function the generator emits decodes to exactly the
        instruction boundaries the generator recorded."""
        layout = generate_code(seed=seed, n_functions=6)
        code = bytes(layout.code)
        for fn in layout.functions:
            decoded = walk_instructions(code, fn.offset, fn.end)
            assert decoded == list(fn.instruction_offsets), fn.name


class TestCovering:
    def test_exact_cover(self):
        code = b"\x55\x8B\xEC\x90\x90\x90\x5D\xC3"
        # 5 bytes of hook clobber push ebp(1) + mov(2) + nop(1) + nop(1)
        assert instructions_covering(code, 0, len(code), 5) == 5

    def test_rounds_up_to_instruction_boundary(self):
        code = b"\xA1\x00\x00\x00\x00\xA1\x00\x00\x00\x00"
        # 6 bytes needed -> covers two 5-byte instructions = 10
        assert instructions_covering(code, 0, len(code), 6) == 10

    def test_function_too_short(self):
        with pytest.raises(DisassemblyError, match="too short"):
            instructions_covering(b"\x90\xC3", 0, 2, 5)

    @given(seed=st.integers(min_value=0, max_value=2_000),
           n_bytes=st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_cover_property(self, seed, n_bytes):
        layout = generate_code(seed=seed, n_functions=3)
        code = bytes(layout.code)
        fn = layout.functions[0]
        covered = instructions_covering(code, fn.offset, fn.end, n_bytes)
        assert covered >= n_bytes
        # covered must end on a recorded boundary (or the function end)
        rel_bounds = {off - fn.offset for off in fn.instruction_offsets}
        rel_bounds.add(fn.size)
        assert covered in rel_bounds


class TestConditionalBranches:
    def test_jcc_rel8(self):
        assert instruction_length(b"\x74\x00") == 2      # je
        assert instruction_length(b"\x7F\x05") == 2      # jg

    def test_jcc_rel32(self):
        assert instruction_length(b"\x0F\x84\x00\x00\x00\x00") == 6

    def test_unsupported_0f_raises(self):
        with pytest.raises(DisassemblyError):
            instruction_length(b"\x0F\x05")              # syscall

    def test_generated_code_contains_branches(self):
        layout = generate_code(seed=3, n_functions=20)
        code = bytes(layout.code)
        has8 = any(0x70 <= code[off] <= 0x7F
                   for fn in layout.functions
                   for off in fn.instruction_offsets)
        has32 = any(code[off] == 0x0F
                    for fn in layout.functions
                    for off in fn.instruction_offsets)
        assert has8 and has32
