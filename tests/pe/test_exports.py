"""Unit tests for export directories."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PEFormatError
from repro.pe import map_file_to_memory
from repro.pe.constants import DIR_EXPORT
from repro.pe.exports import (EXPORT_DIRECTORY_SIZE, ExportDirectory,
                              build_export_block, parse_exports)
from repro.pe.parser import PEImage


class TestBuildParse:
    def _roundtrip(self, exports, rva=0x3000):
        block = build_export_block("mod.sys", exports, rva)
        image = bytearray(rva + len(block) + 64)
        image[rva:rva + len(block)] = block
        return parse_exports(bytes(image), rva, len(block))

    def test_roundtrip(self):
        name, table = self._roundtrip([("Alpha", 0x1000), ("Beta", 0x1100)])
        assert name == "mod.sys"
        assert table == {"Alpha": 0x1000, "Beta": 0x1100}

    def test_names_sorted_in_table(self):
        block = build_export_block("m", [("zzz", 1), ("aaa", 2)], 0)
        directory = ExportDirectory.unpack(block)
        assert directory.number_of_names == 2
        # parse back: mapping must still be correct despite reordering
        image = block + b"\x00" * 16
        _, table = parse_exports(image, 0, len(block))
        assert table == {"zzz": 1, "aaa": 2}

    def test_empty_export_list(self):
        name, table = self._roundtrip([])
        assert name == "mod.sys" and table == {}

    def test_directory_header_size(self):
        directory = ExportDirectory.unpack(
            build_export_block("m", [("f", 1)], 0))
        assert len(directory.pack()) == EXPORT_DIRECTORY_SIZE

    def test_directory_outside_image_rejected(self):
        with pytest.raises(PEFormatError):
            parse_exports(b"\x00" * 16, 8, 40)

    def test_implausible_count_rejected(self):
        block = bytearray(build_export_block("m", [("f", 1)], 0))
        block[24:28] = (0x20000).to_bytes(4, "little")   # NumberOfNames
        with pytest.raises(PEFormatError, match="implausible"):
            parse_exports(bytes(block) + b"\x00" * 64, 0, len(block))

    def test_bad_ordinal_rejected(self):
        block = bytearray(build_export_block("m", [("f", 1)], 0))
        # ordinal table starts at 40 + 4 + 4; point it past functions
        block[48:50] = (7).to_bytes(2, "little")
        with pytest.raises(PEFormatError, match="ordinal"):
            parse_exports(bytes(block) + b"\x00" * 64, 0, len(block))

    @given(st.dictionaries(
        st.text(alphabet=st.characters(min_codepoint=65, max_codepoint=122),
                min_size=1, max_size=12),
        st.integers(min_value=0, max_value=0xFFFFF), max_size=20))
    @settings(max_examples=50)
    def test_roundtrip_property(self, table):
        got_name, got = self._roundtrip(sorted(table.items()))
        assert got == table
        assert got_name == "mod.sys"


class TestBuilderIntegration:
    def test_catalog_driver_has_export_directory(self, small_driver):
        d = small_driver.optional_header.data_directories[DIR_EXPORT]
        assert d.size > 0
        assert d.virtual_address == small_driver.export_dir_rva

    def test_exports_match_generated_functions(self, small_driver):
        image = bytes(map_file_to_memory(small_driver.file_bytes))
        d = small_driver.optional_header.data_directories[DIR_EXPORT]
        name, table = parse_exports(image, d.virtual_address, d.size)
        assert name == small_driver.name
        expected = {fn_name: rva
                    for fn_name, rva, _ in small_driver.functions_rva()}
        assert table == expected

    def test_export_block_inside_rdata(self, small_driver):
        pe = PEImage(bytes(map_file_to_memory(small_driver.file_bytes)))
        rdata = pe.section(".rdata")
        d = small_driver.optional_header.data_directories[DIR_EXPORT]
        assert rdata.virtual_address <= d.virtual_address
        assert d.virtual_address + d.size <= \
            rdata.virtual_address + rdata.virtual_size
