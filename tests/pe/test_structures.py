"""Unit tests for the PE header (de)serialisers."""

import pytest

from repro.errors import PEFormatError
from repro.pe import constants as C
from repro.pe.structures import (DataDirectory, DosHeader, FileHeader,
                                 OptionalHeader, SectionHeader,
                                 pack_section_name, unpack_section_name)


class TestDosHeader:
    def test_roundtrip(self):
        hdr = DosHeader(e_fields=tuple(range(29)), e_lfanew=0xE0)
        assert DosHeader.unpack(hdr.pack()) == hdr

    def test_size(self):
        assert len(DosHeader().pack()) == 64

    def test_bad_magic_rejected(self):
        raw = bytearray(DosHeader().pack())
        raw[:2] = b"ZM"
        with pytest.raises(PEFormatError, match="bad DOS magic"):
            DosHeader.unpack(bytes(raw))

    def test_short_buffer_rejected(self):
        with pytest.raises(PEFormatError, match="short read"):
            DosHeader.unpack(b"MZ\x00")

    def test_wrong_field_count_rejected_on_pack(self):
        with pytest.raises(PEFormatError):
            DosHeader(e_fields=(1, 2, 3)).pack()


class TestFileHeader:
    def test_roundtrip(self):
        hdr = FileHeader(number_of_sections=5, time_date_stamp=0x4F5A2C00,
                         characteristics=0x010E)
        assert FileHeader.unpack(hdr.pack()) == hdr

    def test_size(self):
        assert len(FileHeader().pack()) == 20

    def test_defaults_are_i386_pe32(self):
        hdr = FileHeader()
        assert hdr.machine == C.MACHINE_I386
        assert hdr.size_of_optional_header == C.OPTIONAL_HEADER_SIZE_PE32

    def test_short_buffer_rejected(self):
        with pytest.raises(PEFormatError):
            FileHeader.unpack(b"\x4c\x01")


class TestOptionalHeader:
    def test_roundtrip(self):
        hdr = OptionalHeader(size_of_code=0x2000, image_base=0x10000,
                             size_of_image=0x8000, checksum=0xABCD)
        assert OptionalHeader.unpack(hdr.pack()) == hdr

    def test_size_is_224(self):
        assert len(OptionalHeader().pack()) == 224

    def test_directory_roundtrip(self):
        hdr = OptionalHeader().with_directory(C.DIR_BASERELOC, 0x5000, 0x120)
        back = OptionalHeader.unpack(hdr.pack())
        d = back.data_directories[C.DIR_BASERELOC]
        assert (d.virtual_address, d.size) == (0x5000, 0x120)

    def test_non_pe32_magic_rejected(self):
        raw = bytearray(OptionalHeader().pack())
        raw[0:2] = (0x020B).to_bytes(2, "little")   # PE32+
        with pytest.raises(PEFormatError, match="PE32 only"):
            OptionalHeader.unpack(bytes(raw))

    def test_xp_version_defaults(self):
        hdr = OptionalHeader()
        assert (hdr.major_os_version, hdr.minor_os_version) == (5, 1)
        assert hdr.subsystem == C.SUBSYSTEM_NATIVE

    def test_wrong_directory_count_rejected(self):
        with pytest.raises(PEFormatError):
            OptionalHeader(data_directories=(DataDirectory(),)).pack()


class TestSectionHeader:
    def test_roundtrip(self):
        hdr = SectionHeader(name=".text", virtual_size=0x1234,
                            virtual_address=0x1000, size_of_raw_data=0x1400,
                            pointer_to_raw_data=0x400,
                            characteristics=C.TEXT_CHARACTERISTICS)
        assert SectionHeader.unpack(hdr.pack()) == hdr

    def test_size(self):
        assert len(SectionHeader().pack()) == 40

    def test_executable_flag(self):
        text = SectionHeader(characteristics=C.TEXT_CHARACTERISTICS)
        data = SectionHeader(characteristics=C.DATA_CHARACTERISTICS)
        assert text.is_executable and not data.is_executable
        assert text.is_readonly_code
        assert data.is_writable

    def test_writable_code_is_not_readonly_code(self):
        rwx = SectionHeader(characteristics=(C.TEXT_CHARACTERISTICS
                                             | C.SCN_MEM_WRITE))
        assert rwx.is_executable and not rwx.is_readonly_code


class TestSectionNames:
    def test_roundtrip(self):
        for name in (".text", "INIT", ".reloc", "a" * 8, ""):
            assert unpack_section_name(pack_section_name(name)) == name

    def test_too_long_rejected(self):
        with pytest.raises(PEFormatError, match="too long"):
            pack_section_name("toolongname")

    def test_padding_is_nul(self):
        assert pack_section_name(".x") == b".x" + b"\x00" * 6
