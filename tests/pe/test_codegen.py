"""Unit tests for the synthetic code generator."""

import struct

import pytest

from repro.pe.codegen import (EPILOGUE, OPC_DEC_ECX, PROLOGUE, generate_code)


class TestDeterminism:
    def test_same_seed_same_code(self):
        a = generate_code(seed=5)
        b = generate_code(seed=5)
        assert bytes(a.code) == bytes(b.code)
        assert a.refs == b.refs
        assert a.functions == b.functions

    def test_different_seeds_differ(self):
        a = generate_code(seed=5)
        b = generate_code(seed=6)
        assert bytes(a.code) != bytes(b.code)


class TestStructure:
    def test_function_count(self):
        layout = generate_code(n_functions=7, seed=1)
        assert len(layout.functions) == 7

    def test_entry_function_first_at_zero(self):
        layout = generate_code(seed=1, entry_name="DriverEntry")
        entry = layout.functions[0]
        assert entry.name == "DriverEntry"
        assert entry.offset == 0

    def test_functions_non_overlapping_and_ordered(self):
        layout = generate_code(n_functions=10, seed=2)
        for prev, cur in zip(layout.functions, layout.functions[1:]):
            assert prev.end <= cur.offset

    def test_prologue_and_epilogue_present(self):
        layout = generate_code(seed=3)
        code = bytes(layout.code)
        for fn in layout.functions:
            assert code[fn.offset:fn.offset + 3] == PROLOGUE
            assert code[fn.end - 2:fn.end] == EPILOGUE

    def test_entry_contains_planted_dec_ecx(self):
        layout = generate_code(seed=4)
        entry = layout.functions[0]
        assert layout.code[entry.offset + len(PROLOGUE)] == OPC_DEC_ECX

    def test_dec_ecx_not_emitted_randomly(self):
        # DEC ECX only ever appears where deliberately planted, so E1
        # has a deterministic target.
        layout = generate_code(n_functions=20, seed=9)
        code = bytes(layout.code)
        planted = layout.functions[0].offset + len(PROLOGUE)
        for fn in layout.functions:
            for off in fn.instruction_offsets:
                if code[off] == OPC_DEC_ECX:
                    assert off == planted

    def test_instruction_offsets_within_function(self):
        layout = generate_code(seed=5)
        for fn in layout.functions:
            assert all(fn.offset <= o < fn.end
                       for o in fn.instruction_offsets)

    def test_lookup_by_name(self):
        layout = generate_code(seed=5)
        assert layout.function("fn_003").name == "fn_003"
        with pytest.raises(KeyError):
            layout.function("nope")


class TestCaves:
    def test_caves_are_zero_filled(self):
        layout = generate_code(seed=6)
        code = bytes(layout.code)
        assert layout.caves, "generator should emit caves"
        for cave in layout.caves:
            assert code[cave.offset:cave.offset + cave.size] == \
                b"\x00" * cave.size

    def test_largest_cave_big_enough_for_hooking(self):
        layout = generate_code(seed=7)
        cave = layout.largest_cave()
        assert cave is not None and cave.size >= 24

    def test_caves_do_not_overlap_functions(self):
        layout = generate_code(seed=8)
        for cave in layout.caves:
            for fn in layout.functions:
                assert cave.offset + cave.size <= fn.offset \
                    or cave.offset >= fn.end


class TestReferences:
    def test_abs_ref_slots_inside_code(self):
        layout = generate_code(seed=9)
        assert layout.refs, "expected absolute references"
        for ref in layout.refs:
            assert 0 <= ref.slot_offset <= len(layout.code) - 4

    def test_abs_ref_slots_are_placeholder_zero(self):
        layout = generate_code(seed=10)
        for ref in layout.refs:
            slot = bytes(layout.code[ref.slot_offset:ref.slot_offset + 4])
            assert slot == b"\x00\x00\x00\x00"

    def test_abs_refs_target_data_section(self):
        layout = generate_code(seed=11, data_section=".data", data_size=0x100)
        for ref in layout.refs:
            assert ref.target_section == ".data"
            assert 0 <= ref.target_offset < 0x100

    def test_rel_calls_resolve_to_function_starts(self):
        layout = generate_code(seed=12, n_functions=16,
                               rel_call_density=0.15)
        code = bytes(layout.code)
        starts = {fn.offset for fn in layout.functions}
        found = 0
        for fn in layout.functions:
            for off in fn.instruction_offsets:
                if code[off] == 0xE8:
                    rel = struct.unpack_from("<i", code, off + 1)[0]
                    target = off + 5 + rel
                    assert target in starts
                    found += 1
        assert found > 0, "expected at least one relative call"


class TestValidation:
    def test_zero_functions_rejected(self):
        with pytest.raises(ValueError):
            generate_code(n_functions=0)
