"""Unit tests for PEImage parsing and file->memory mapping."""

import pytest

from repro.errors import PEFormatError
from repro.pe import constants as C
from repro.pe.parser import MAX_SECTIONS, PEImage, map_file_to_memory


@pytest.fixture(scope="module")
def image(small_driver):
    return bytes(map_file_to_memory(small_driver.file_bytes))


@pytest.fixture(scope="module")
def pe(image):
    return PEImage(image)


class TestParsing:
    def test_sections_parsed(self, pe, small_driver):
        assert [s.name for s in pe.sections] == \
            [s.name for s in small_driver.sections]

    def test_executable_sections(self, pe):
        assert [s.name for s in pe.executable_sections()] == [".text", "INIT"]

    def test_section_lookup(self, pe):
        assert pe.section(".data").name == ".data"
        with pytest.raises(KeyError):
            pe.section(".nope")

    def test_section_data_matches_raw(self, pe, small_driver):
        text = small_driver.section(".text")
        raw = small_driver.file_bytes[
            text.pointer_to_raw_data:
            text.pointer_to_raw_data + text.virtual_size]
        assert pe.section_data(".text") == raw

    def test_headers_identical_to_file(self, image, small_driver):
        n = small_driver.optional_header.size_of_headers
        assert image[:n] == small_driver.file_bytes[:n]


class TestRegions:
    def test_header_region_names(self, pe):
        names = [r.name for r in pe.header_regions()]
        assert names[:3] == ["IMAGE_DOS_HEADER", "IMAGE_NT_HEADER",
                             "IMAGE_OPTIONAL_HEADER"]
        assert "SECTION_HEADER[.text]" in names
        assert "SECTION_HEADER[.reloc]" in names

    def test_dos_region_covers_stub(self, pe):
        dos = pe.header_regions()[0]
        assert dos.start == 0
        assert dos.end == pe.e_lfanew
        assert C.DOS_STUB_MESSAGE in dos.slice(pe.buf)

    def test_nt_region_is_signature_plus_file_header(self, pe):
        nt = pe.header_regions()[1]
        assert nt.size == 4 + 20
        assert nt.slice(pe.buf)[:4] == b"PE\x00\x00"

    def test_optional_region_size(self, pe):
        opt = pe.header_regions()[2]
        assert opt.size == 224

    def test_section_header_regions_are_40_bytes(self, pe):
        for r in pe.header_regions()[3:]:
            assert r.size == 40

    def test_code_regions_are_executable_sections_only(self, pe):
        assert [r.name for r in pe.code_regions()] == [".text", "INIT"]

    def test_regions_cover_disjoint_header_ranges(self, pe):
        regions = pe.header_regions()
        for a, b in zip(regions, regions[1:]):
            assert a.end <= b.start

    def test_region_slice_size(self, pe):
        for r in pe.all_regions():
            assert len(r.slice(pe.buf)) == r.size


class TestHostileInput:
    def test_bad_dos_magic(self, image):
        bad = b"XX" + image[2:]
        with pytest.raises(PEFormatError):
            PEImage(bad)

    def test_bad_pe_signature(self, pe, image):
        bad = bytearray(image)
        bad[pe.e_lfanew:pe.e_lfanew + 4] = b"XX\x00\x00"
        with pytest.raises(PEFormatError, match="signature"):
            PEImage(bytes(bad))

    def test_e_lfanew_out_of_range(self, image):
        bad = bytearray(image)
        bad[0x3C:0x40] = (len(image) + 50).to_bytes(4, "little")
        with pytest.raises(PEFormatError, match="e_lfanew"):
            PEImage(bytes(bad))

    def test_huge_section_count_rejected(self, pe, image):
        bad = bytearray(image)
        off = pe.e_lfanew + 4 + 2   # FileHeader.NumberOfSections
        bad[off:off + 2] = (MAX_SECTIONS + 1).to_bytes(2, "little")
        with pytest.raises(PEFormatError, match="implausible"):
            PEImage(bytes(bad))

    def test_section_past_image_end_rejected(self, pe, image):
        bad = bytearray(image)
        # First section header's VirtualSize field (offset 8 in header).
        off = pe.section_table_offset + 8
        bad[off:off + 4] = (len(image) * 2).to_bytes(4, "little")
        with pytest.raises(PEFormatError, match="extends past"):
            PEImage(bytes(bad))

    def test_truncated_section_table(self, pe, image):
        truncated = image[:pe.section_table_offset + 10]
        with pytest.raises(PEFormatError):
            PEImage(truncated)


class TestMapping:
    def test_image_size(self, image, small_driver):
        assert len(image) == small_driver.size_of_image

    def test_sections_at_their_rvas(self, image, small_driver):
        for sec in small_driver.sections:
            raw = small_driver.file_bytes[
                sec.pointer_to_raw_data:
                sec.pointer_to_raw_data + min(sec.size_of_raw_data,
                                              sec.virtual_size)]
            got = image[sec.virtual_address:sec.virtual_address + len(raw)]
            assert got == raw, sec.name

    def test_gaps_zero_filled(self, image, small_driver):
        text = small_driver.section(".text")
        gap_start = text.virtual_address + text.virtual_size
        gap_end = small_driver.section(".rdata").virtual_address
        assert image[gap_start:gap_end] == b"\x00" * (gap_end - gap_start)

    def test_missing_signature_rejected(self, small_driver):
        bad = bytearray(small_driver.file_bytes)
        e = small_driver.e_lfanew
        bad[e:e + 4] = b"ZZZZ"
        with pytest.raises(PEFormatError):
            map_file_to_memory(bytes(bad))
