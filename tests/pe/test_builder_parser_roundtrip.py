"""Seeded property-based round-trip suite: parse(build(x)) == x.

Each case draws builder parameters from a ``random.Random(seed)``
stream (stdlib only — no extra dependencies): function count and size
(which drive ``.text`` size and relocation density), data-section
size, import-table width and the load base. For every generated
driver we assert:

* the parsed memory image preserves the built layout — section names,
  RVAs, virtual sizes and characteristics survive the build ->
  file -> memory-map -> parse round trip;
* the relocation section round-trips (``parse(build(fixups))`` is the
  original, sorted and deduplicated);
* **base independence** — load the same file at two different bases
  (applying relocations exactly like the guest loader), RVA-normalise
  the pair, and the two adjusted buffers are byte-identical with zero
  unresolved differences. This is the property the whole cross-VM
  comparison (and the incremental pipeline's pair replay) rests on.
"""

import random

import pytest

from repro.core.rva import adjust_rva_robust, adjust_rva_vectorized
from repro.pe import constants as C
from repro.pe.builder import ImportSpec, build_driver
from repro.pe.parser import PEImage, map_file_to_memory
from repro.pe.relocations import (apply_relocations, build_reloc_section,
                                  parse_reloc_section)

_IMPORT_POOL = (
    ImportSpec("ntoskrnl.exe", ("ExAllocatePoolWithTag",
                                "ExFreePoolWithTag", "KeBugCheckEx")),
    ImportSpec("hal.dll", ("KfAcquireSpinLock", "KfReleaseSpinLock")),
    ImportSpec("ndis.sys", ("NdisAllocateMemoryWithTag",)),
)

SEEDS = range(10)


def _draw_params(seed: int) -> dict:
    """One deterministic parameter draw per seed (stdlib RNG only)."""
    rng = random.Random(seed)
    return dict(
        seed=rng.randrange(1 << 16),
        n_functions=rng.randint(2, 24),               # reloc density knob
        avg_function_size=rng.randint(48, 320),
        data_size=rng.choice([0x100, 0x400, 0x800, 0x1800]),
        image_base=rng.randrange(0x0001_0000, 0x1000_0000, 0x1_0000),
        imports=tuple(_IMPORT_POOL[:rng.randint(1, len(_IMPORT_POOL))]),
    )


def _load_at(blueprint, base: int) -> bytes:
    """Map the file and relocate it to ``base``, like the guest loader."""
    image = map_file_to_memory(blueprint.file_bytes)
    fixups = parse_reloc_section(
        bytes(image[blueprint.section(".reloc").virtual_address:
                    blueprint.section(".reloc").virtual_address
                    + blueprint.section(".reloc").virtual_size]))
    apply_relocations(image, fixups, base - blueprint.image_base)
    return bytes(image)


@pytest.fixture(scope="module", params=SEEDS)
def case(request):
    params = _draw_params(request.param)
    return params, build_driver(f"case{request.param}.sys", **params)


class TestLayoutRoundTrip:
    def test_sections_preserved(self, case):
        _, bp = case
        parsed = PEImage(bytes(map_file_to_memory(bp.file_bytes)))
        assert [s.name for s in parsed.sections] == \
            [s.name for s in bp.sections]
        for built, seen in zip(bp.sections, parsed.sections):
            assert seen.virtual_address == built.virtual_address
            assert seen.virtual_size == built.virtual_size
            assert seen.characteristics == built.characteristics

    def test_alignment_invariants(self, case):
        _, bp = case
        parsed = PEImage(bytes(map_file_to_memory(bp.file_bytes)))
        align = parsed.optional_header.section_alignment
        assert align == C.DEFAULT_SECTION_ALIGNMENT
        for sec in parsed.sections:
            assert sec.virtual_address % align == 0
        assert parsed.optional_header.size_of_image % align == 0

    def test_entry_point_inside_text(self, case):
        _, bp = case
        parsed = PEImage(bytes(map_file_to_memory(bp.file_bytes)))
        text = parsed.section(".text")
        ep = parsed.optional_header.address_of_entry_point
        assert text.virtual_address <= ep \
            < text.virtual_address + text.virtual_size

    def test_section_bytes_survive_mapping(self, case):
        """Raw section data lands at its RVA, truncated/zero-padded to
        the virtual size — the loader contract the searcher relies on."""
        _, bp = case
        image = bytes(map_file_to_memory(bp.file_bytes))
        for sec in bp.sections:
            raw = bp.file_bytes[sec.pointer_to_raw_data:
                                sec.pointer_to_raw_data
                                + sec.size_of_raw_data]
            n = min(sec.virtual_size, sec.size_of_raw_data)
            assert image[sec.virtual_address:
                         sec.virtual_address + n] == raw[:n]


class TestRelocRoundTrip:
    def test_reloc_section_parses_back(self, case):
        params, bp = case
        sec = bp.section(".reloc")
        image = map_file_to_memory(bp.file_bytes)
        fixups = parse_reloc_section(
            bytes(image[sec.virtual_address:
                        sec.virtual_address + sec.virtual_size]))
        assert fixups == sorted(set(fixups))
        assert len(fixups) > 0
        rebuilt = build_reloc_section(fixups)
        assert parse_reloc_section(rebuilt) == fixups

    def test_density_scales_with_function_count(self):
        """More generated functions -> more absolute-address slots."""
        small = build_driver("small.sys", seed=3, n_functions=2)
        large = build_driver("large.sys", seed=3, n_functions=24)

        def n_fixups(bp):
            sec = bp.section(".reloc")
            image = map_file_to_memory(bp.file_bytes)
            return len(parse_reloc_section(
                bytes(image[sec.virtual_address:
                            sec.virtual_address + sec.virtual_size])))
        assert n_fixups(large) > n_fixups(small)


class TestBaseIndependence:
    def test_rva_normalisation_is_byte_identical(self, case):
        params, bp = case
        rng = random.Random(params["seed"] ^ 0x5EED)
        base_a = bp.image_base + rng.randrange(1, 0x200) * 0x1000
        base_b = bp.image_base + rng.randrange(0x200, 0x400) * 0x1000
        img_a, img_b = _load_at(bp, base_a), _load_at(bp, base_b)
        assert img_a != img_b       # relocation really moved slots
        text = bp.section(".text")
        sl = slice(text.virtual_address,
                   text.virtual_address + text.virtual_size)
        out_a, out_b, stats = adjust_rva_robust(
            img_a[sl], base_a, img_b[sl], base_b,
            max_rva=bp.size_of_image)
        assert out_a == out_b
        assert stats.unresolved == 0
        assert stats.replaced > 0

    def test_vectorized_adjuster_agrees(self, case):
        params, bp = case
        base_a = bp.image_base + 0x40_0000
        base_b = bp.image_base + 0x73_000 * 0x10
        img_a, img_b = _load_at(bp, base_a), _load_at(bp, base_b)
        text = bp.section(".text")
        sl = slice(text.virtual_address,
                   text.virtual_address + text.virtual_size)
        robust = adjust_rva_robust(img_a[sl], base_a, img_b[sl], base_b,
                                   max_rva=bp.size_of_image)
        vector = adjust_rva_vectorized(img_a[sl], base_a, img_b[sl],
                                       base_b, max_rva=bp.size_of_image)
        assert robust[0] == vector[0]
        assert robust[1] == vector[1]

    def test_same_base_is_identity(self, case):
        _, bp = case
        image = bytes(map_file_to_memory(bp.file_bytes))
        text = bp.section(".text")
        sl = slice(text.virtual_address,
                   text.virtual_address + text.virtual_size)
        out_a, out_b, stats = adjust_rva_robust(
            image[sl], bp.image_base, image[sl], bp.image_base)
        assert out_a == image[sl] and out_b == image[sl]
        assert stats.windows == 0
