"""Unit tests for the PE checksum."""

import struct

import pytest

from repro.pe.checksum import pe_checksum, stamp_checksum


class TestChecksum:
    def test_deterministic(self):
        data = bytes(range(256)) * 4
        assert pe_checksum(data, 8) == pe_checksum(data, 8)

    def test_checksum_field_excluded(self):
        # Two files differing only inside the checksum field hash equal.
        a = bytearray(b"\xAA" * 128)
        b = bytearray(a)
        b[8:12] = b"\x12\x34\x56\x78"
        assert pe_checksum(bytes(a), 8) == pe_checksum(bytes(b), 8)

    def test_content_change_changes_checksum(self):
        a = bytes(128)
        b = bytearray(a)
        b[100] = 0xFF
        assert pe_checksum(a, 8) != pe_checksum(bytes(b), 8)

    def test_includes_length(self):
        # Same content sum, different length -> different checksum.
        a = bytes(128)
        b = bytes(256)
        assert pe_checksum(a, 8) != pe_checksum(b, 8)

    def test_odd_length_handled(self):
        data = bytes(129)
        assert isinstance(pe_checksum(data, 8), int)

    def test_field_outside_file_rejected(self):
        with pytest.raises(ValueError):
            pe_checksum(bytes(16), 14)

    def test_stamp_roundtrip(self, small_driver):
        # Re-stamping an already-stamped file is a fixed point.
        buf = bytearray(small_driver.file_bytes)
        value = stamp_checksum(buf, small_driver.e_lfanew)
        off = small_driver.e_lfanew + 4 + 20 + 64
        assert struct.unpack_from("<I", buf, off)[0] == value
        assert stamp_checksum(buf, small_driver.e_lfanew) == value
