"""Unit + property tests for base-relocation encode/apply."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RelocationError
from repro.pe.relocations import (apply_relocations, build_reloc_section,
                                  parse_reloc_section,
                                  relocation_delta_sites)


class TestBuildParse:
    def test_empty(self):
        assert build_reloc_section([]) == b""
        assert parse_reloc_section(b"") == []

    def test_single_fixup(self):
        data = build_reloc_section([0x1234])
        assert parse_reloc_section(data) == [0x1234]

    def test_blocks_grouped_per_page(self):
        rvas = [0x1000, 0x1FF0, 0x2004, 0x5008]
        data = build_reloc_section(rvas)
        # three pages -> three blocks
        pages = set()
        pos = 0
        while pos < len(data):
            page, size = struct.unpack_from("<II", data, pos)
            pages.add(page)
            pos += size
        assert pages == {0x1000, 0x2000, 0x5000}
        assert parse_reloc_section(data) == sorted(rvas)

    def test_blocks_dword_aligned(self):
        for rvas in ([0x10], [0x10, 0x20], [0x10, 0x20, 0x30]):
            data = build_reloc_section(rvas)
            assert len(data) % 4 == 0

    def test_duplicates_collapsed(self):
        assert parse_reloc_section(build_reloc_section([8, 8, 8])) == [8]

    def test_negative_rva_rejected(self):
        with pytest.raises(RelocationError):
            build_reloc_section([-1])

    def test_truncated_block_rejected(self):
        data = build_reloc_section([0x10, 0x20])
        with pytest.raises(RelocationError):
            parse_reloc_section(data[:9])

    def test_unknown_type_rejected(self):
        # Craft a block with type 10 (IMAGE_REL_BASED_DIR64).
        data = struct.pack("<II", 0x1000, 12) + struct.pack(
            "<HH", (10 << 12) | 4, 0)
        with pytest.raises(RelocationError, match="unsupported"):
            parse_reloc_section(data)

    def test_zero_size_block_terminates(self):
        data = build_reloc_section([4]) + struct.pack("<II", 0, 0)
        assert parse_reloc_section(data) == [4]

    @given(st.lists(st.integers(min_value=0, max_value=0x80000),
                    max_size=200))
    @settings(max_examples=60)
    def test_roundtrip_property(self, rvas):
        assert parse_reloc_section(build_reloc_section(rvas)) == \
            sorted(set(rvas))


class TestApply:
    def _image_with_slots(self, slots, values):
        image = bytearray(0x4000)
        for rva, value in zip(slots, values):
            image[rva:rva + 4] = struct.pack("<I", value)
        return image

    def test_delta_added_to_each_slot(self):
        slots = [0x10, 0x100, 0x3FF0]
        image = self._image_with_slots(slots, [0x11000, 0x12345, 0x20000])
        n = apply_relocations(image, slots, 0xF0000)
        assert n == 3
        assert struct.unpack_from("<I", image, 0x10)[0] == 0x101000
        assert struct.unpack_from("<I", image, 0x100)[0] == 0x102345
        assert struct.unpack_from("<I", image, 0x3FF0)[0] == 0x110000

    def test_zero_delta_noop(self):
        slots = [0x10]
        image = self._image_with_slots(slots, [0x11000])
        before = bytes(image)
        assert apply_relocations(image, slots, 0) == 0
        assert bytes(image) == before

    def test_wraps_at_32_bits(self):
        image = self._image_with_slots([0], [0xFFFFFFFF])
        apply_relocations(image, [0], 2)
        assert struct.unpack_from("<I", image, 0)[0] == 1

    def test_negative_delta(self):
        image = self._image_with_slots([0], [0x20000])
        apply_relocations(image, [0], -0x10000)
        assert struct.unpack_from("<I", image, 0)[0] == 0x10000

    def test_out_of_range_slot_rejected(self):
        image = bytearray(16)
        with pytest.raises(RelocationError):
            apply_relocations(image, [14], 0x1000)

    def test_apply_then_unapply_is_identity(self):
        slots = [0x40, 0x80, 0x200]
        image = self._image_with_slots(slots, [0x1111, 0x2222, 0x3333])
        before = bytes(image)
        apply_relocations(image, slots, 0x7000)
        apply_relocations(image, slots, -0x7000)
        assert bytes(image) == before

    @given(st.sets(st.integers(min_value=0, max_value=250), max_size=20),
           st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    @settings(max_examples=60)
    def test_inverse_property(self, slot_set, delta):
        # Space slots 4 apart so they never overlap.
        slots = sorted(s * 4 for s in slot_set)
        image = bytearray(1024)
        for i, s in enumerate(slots):
            struct.pack_into("<I", image, s, (i * 0x1111) & 0xFFFFFFFF)
        before = bytes(image)
        apply_relocations(image, slots, delta)
        apply_relocations(image, slots, -delta)
        assert bytes(image) == before


class TestDeltaSites:
    def test_identical_buffers(self):
        assert relocation_delta_sites(b"abc", b"abc") == []

    def test_reports_differing_offsets(self):
        assert relocation_delta_sites(b"aXcY", b"abcd") == [1, 3]

    def test_length_mismatch_rejected(self):
        with pytest.raises(RelocationError):
            relocation_delta_sites(b"ab", b"abc")
