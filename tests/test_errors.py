"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_family_catching(self):
        with pytest.raises(errors.PEError):
            raise errors.PEFormatError("x")
        with pytest.raises(errors.MemoryError_):
            raise errors.PageFault(0x1000)
        with pytest.raises(errors.VMIError):
            raise errors.IntrospectionFault("x")
        with pytest.raises(errors.AttackError):
            raise errors.NoOpcodeCave("x")

    def test_page_fault_carries_address(self):
        fault = errors.PageFault(0xDEAD0000)
        assert fault.address == 0xDEAD0000
        assert "0xdead0000" in str(fault)

    def test_page_fault_custom_message(self):
        fault = errors.PageFault(0x1000, "custom")
        assert str(fault) == "custom"

    def test_memory_error_does_not_shadow_builtin(self):
        assert errors.MemoryError_ is not MemoryError
        assert not issubclass(errors.MemoryError_, MemoryError)

    def test_disassembly_error_in_family(self):
        from repro.pe.disasm import DisassemblyError
        assert issubclass(DisassemblyError, errors.ReproError)
