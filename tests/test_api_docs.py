"""Guard: docs/API.md stays in sync with the code's public surface."""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "_gen_api_docs", ROOT / "tools" / "gen_api_docs.py")
    mod = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(mod)
    return mod


class TestApiDocs:
    def test_api_md_up_to_date(self):
        gen = _load_generator()
        target = ROOT / "docs" / "API.md"
        assert target.exists(), "run python tools/gen_api_docs.py"
        assert target.read_text() == gen.generate(), \
            "docs/API.md is stale; run python tools/gen_api_docs.py"

    def test_every_listed_module_exports_something(self):
        gen = _load_generator()
        import importlib
        for mod_name in gen.MODULES:
            module = importlib.import_module(mod_name)
            assert getattr(module, "__all__", []), mod_name

    def test_reference_covers_core_api(self):
        text = (ROOT / "docs" / "API.md").read_text()
        for name in ("ModChecker", "ModuleSearcher", "IntegrityChecker",
                     "adjust_rva_faithful", "build_testbed",
                     "VMIInstance", "Hypervisor", "GuestKernel"):
            assert name in text, name
