"""Unit tests for ASCII rendering."""

import pytest

from repro.analysis.tables import format_seconds, render_series, render_table


class TestFormatSeconds:
    def test_scales(self):
        assert format_seconds(2.5) == "2.500 s"
        assert format_seconds(0.0042) == "4.20 ms"
        assert format_seconds(3.2e-6) == "3.2 us"


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "long"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_empty_rows(self):
        out = render_table(["x", "y"], [])
        assert len(out.splitlines()) == 2


class TestRenderSeries:
    def test_bars_scale(self):
        out = render_series([1, 2], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[-1].count("#") == 10
        assert lines[-2].count("#") == 5

    def test_zero_series(self):
        out = render_series([1], [0.0])
        assert "#" not in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series([1], [1.0, 2.0])

    def test_title_and_labels(self):
        out = render_series([1], [1.0], title="Fig", x_label="vms",
                            y_label="sec")
        assert out.splitlines()[0] == "Fig"
        assert "vms" in out and "sec" in out
