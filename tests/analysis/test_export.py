"""Unit tests for figure-data export."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.export import (SeriesBundle, read_csv, read_json,
                                   write_csv, write_json)


@pytest.fixture
def bundle():
    b = SeriesBundle(name="fig7", meta={"module": "http.sys"})
    b.add_column("n_vms", [2, 3, 4])
    b.add_column("total_s", [0.006, 0.009, 0.012])
    b.add_column("label", ["a", "b", "c"])
    return b


class TestBundle:
    def test_rows(self, bundle):
        assert bundle.rows() == [(2, 0.006, "a"), (3, 0.009, "b"),
                                 (4, 0.012, "c")]
        assert bundle.n_rows == 3

    def test_length_mismatch_rejected(self, bundle):
        with pytest.raises(ValueError, match="rows"):
            bundle.add_column("bad", [1])

    def test_empty(self):
        assert SeriesBundle("x").n_rows == 0
        assert SeriesBundle("x").rows() == []


class TestCsv:
    def test_roundtrip(self, bundle, tmp_path):
        path = write_csv(bundle, tmp_path / "fig7.csv")
        back = read_csv(path)
        assert back.columns == bundle.columns
        assert back.name == "fig7"

    def test_creates_parent_dirs(self, bundle, tmp_path):
        path = write_csv(bundle, tmp_path / "deep" / "dir" / "f.csv")
        assert path.exists()

    def test_numeric_parsing(self, tmp_path):
        b = SeriesBundle("n")
        b.add_column("ints", [1, 2])
        b.add_column("floats", [1.5, 2.5])
        back = read_csv(write_csv(b, tmp_path / "n.csv"))
        assert back.columns["ints"] == [1, 2]
        assert back.columns["floats"] == [1.5, 2.5]


class TestJson:
    def test_roundtrip(self, bundle, tmp_path):
        other = SeriesBundle("fig8")
        other.add_column("x", [1])
        path = write_json([bundle, other], tmp_path / "all.json")
        back = read_json(path)
        assert [b.name for b in back] == ["fig7", "fig8"]
        assert back[0].columns == bundle.columns
        assert back[0].meta == {"module": "http.sys"}

    @given(values=st.lists(st.floats(allow_nan=False,
                                     allow_infinity=False,
                                     width=32),
                           min_size=1, max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_json_roundtrip_property(self, values, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("exp")
        b = SeriesBundle("p")
        b.add_column("v", values)
        back = read_json(write_json([b], tmp / "p.json"))[0]
        assert back.columns["v"] == values
