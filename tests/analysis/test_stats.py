"""Unit tests for series statistics."""

import numpy as np
import pytest

from repro.analysis.stats import (detect_knee, growth_ratios, is_monotonic,
                                  linear_fit)


class TestLinearFit:
    def test_exact_line(self):
        fit = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_line_high_r2(self):
        rng = np.random.default_rng(1)
        x = np.arange(20.0)
        y = 3 * x + 1 + rng.normal(0, 0.1, 20)
        fit = linear_fit(x, y)
        assert fit.r_squared > 0.99

    def test_quadratic_lower_r2_than_line(self):
        x = np.arange(20.0)
        assert linear_fit(x, x ** 2).r_squared < \
            linear_fit(x, 2 * x).r_squared

    def test_predict(self):
        fit = linear_fit([0, 1], [1, 3])
        assert fit.predict([2])[0] == pytest.approx(5.0)

    def test_constant_series(self):
        fit = linear_fit([1, 2, 3], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])


class TestKnee:
    def test_linear_series_no_knee(self):
        x = list(range(2, 16))
        y = [2.0 * v + 1 for v in x]
        assert detect_knee(x, y) is None

    def test_piecewise_knee_found(self):
        x = list(range(2, 16))
        y = [1.0 * v if v <= 8 else 8.0 + 4.0 * (v - 8) for v in x]
        knee = detect_knee(x, y)
        assert knee is not None
        assert 6 <= knee <= 10

    def test_short_series_none(self):
        assert detect_knee([1, 2, 3], [1, 2, 3]) is None


class TestHelpers:
    def test_growth_ratios(self):
        ratios = growth_ratios([1.0, 2.0, 4.0])
        assert list(ratios) == [2.0, 2.0]

    def test_growth_ratio_zero_guard(self):
        ratios = growth_ratios([0.0, 2.0])
        assert np.isnan(ratios[0])

    def test_is_monotonic(self):
        assert is_monotonic([1, 1, 2, 3])
        assert not is_monotonic([1, 1, 2, 3], strict=True)
        assert is_monotonic([1, 2, 3], strict=True)
        assert not is_monotonic([3, 1])
