"""Unit tests for the libvmi-style caches."""

import pytest

from repro.vmi.cache import LRUCache, PageCache, V2PCache


class TestLRUCache:
    def test_get_miss_then_hit(self):
        c = LRUCache(4)
        assert c.get("k") is None
        c.put("k", 1)
        assert c.get("k") == 1
        assert (c.hits, c.misses) == (1, 1)

    def test_eviction_order_is_lru(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")              # a becomes most-recent
        c.put("c", 3)           # evicts b
        assert c.get("b") is None
        assert c.get("a") == 1
        assert c.get("c") == 3

    def test_put_refreshes_recency(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)
        c.put("c", 3)           # evicts b, not a
        assert c.get("a") == 10
        assert c.get("b") is None

    def test_flush(self):
        c = LRUCache(4)
        c.put("a", 1)
        c.flush()
        assert c.get("a") is None
        assert len(c) == 0

    def test_flush_keeps_counters(self):
        c = LRUCache(4)
        c.put("a", 1)
        c.get("a")
        c.get("zz")
        c.flush()
        assert (c.hits, c.misses) == (1, 1)

    def test_reset_stats_zeroes_counters_only(self):
        """Regression: counters used to survive forever, so hit_rate
        described the whole session instead of the current round."""
        c = LRUCache(4)
        c.put("a", 1)
        c.get("a")
        c.get("zz")
        c.reset_stats()
        assert (c.hits, c.misses) == (0, 0)
        assert c.hit_rate == 0.0
        assert c.get("a") == 1          # contents untouched
        assert c.hit_rate == 1.0        # rate describes the new window

    def test_vmi_flush_caches_starts_fresh_window(self, catalog):
        """flush_caches() between rounds must reset the per-round
        hit-rate accounting alongside the cached contents."""
        from repro.hypervisor import Hypervisor
        from repro.vmi import OSProfile, VMIInstance
        hv = Hypervisor()
        hv.create_guest("Dom1", catalog, seed=1)
        profile = OSProfile.from_guest(hv.domain("Dom1").kernel)
        vmi = VMIInstance(hv, "Dom1", profile)
        vmi.read_va(vmi.symbol("PsLoadedModuleList"), 64)
        vmi.read_va(vmi.symbol("PsLoadedModuleList"), 64)
        assert vmi.page_cache.hits > 0
        vmi.flush_caches()
        assert (vmi.page_cache.hits, vmi.page_cache.misses) == (0, 0)
        assert (vmi.v2p_cache.hits, vmi.v2p_cache.misses) == (0, 0)
        assert vmi.page_cache.hit_rate == 0.0

    def test_capacity_bound(self):
        c = LRUCache(3)
        for i in range(10):
            c.put(i, i)
        assert len(c) == 3

    def test_hit_rate(self):
        c = LRUCache(4)
        c.put("a", 1)
        c.get("a")
        c.get("b")
        assert c.hit_rate == pytest.approx(0.5)

    def test_hit_rate_no_accesses(self):
        assert LRUCache(4).hit_rate == 0.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestSpecialisations:
    def test_defaults(self):
        assert V2PCache().capacity == 2048
        assert PageCache().capacity == 512
