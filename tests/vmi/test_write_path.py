"""The privileged remediation write path: hypervisor + VMI layers.

The repair engine writes through ``VMIInstance.write_va_range``, which
must (a) bypass write-protection traps without disturbing them for
guest-side writers, and (b) keep every cache and cost account honest.
"""

from __future__ import annotations

import pytest

from repro.errors import WriteProtectedError
from repro.hypervisor.xen import Hypervisor
from repro.mem.physical import PAGE_SIZE
from repro.vmi import VMIInstance
from repro.vmi.symbols import OSProfile


@pytest.fixture
def hv(catalog):
    hypervisor = Hypervisor()
    hypervisor.create_guest("Dom1", catalog, seed=1)
    return hypervisor


@pytest.fixture
def vmi(hv):
    profile = OSProfile.from_guest(hv.domain("Dom1").kernel)
    return VMIInstance(hv, "Dom1", profile)


def module_va(hv):
    return hv.domain("Dom1").kernel.module("hal.dll").base


class TestHypervisorFrameWrite:
    def test_unprivileged_write_to_protected_frame_raises(self, hv, vmi):
        va = module_va(hv)
        (gfn, *_) = vmi.protect_va_range(va, PAGE_SIZE)
        with pytest.raises(WriteProtectedError):
            hv.write_guest_frame("Dom1", gfn, b"\x00" * 4)
        # nothing was delivered either: the write never happened
        assert hv.traps.pending("Dom1") == 0

    def test_privileged_write_bypasses_trap_delivery(self, hv, vmi):
        va = module_va(hv)
        (gfn, *_) = vmi.protect_va_range(va, PAGE_SIZE)
        original = hv.read_guest_frame("Dom1", gfn)[:4]
        hv.write_guest_frame("Dom1", gfn, b"\xAA\xBB\xCC\xDD",
                             privileged=True)
        assert hv.traps.pending("Dom1") == 0
        assert hv.read_guest_frame("Dom1", gfn)[:4] == b"\xAA\xBB\xCC\xDD"
        # guest-side writes to the same frame still trap afterwards
        hv.domain("Dom1").kernel.aspace.write(va, original)
        assert hv.traps.pending("Dom1") == 1

    def test_write_respects_offset_and_bounds(self, hv, vmi):
        va = module_va(hv)
        frame = vmi.translate_kv2p(va) // PAGE_SIZE
        hv.write_guest_frame("Dom1", frame, b"\x55", offset=7)
        assert hv.read_guest_frame("Dom1", frame)[7] == 0x55
        with pytest.raises(ValueError):
            hv.write_guest_frame("Dom1", frame, b"\x00" * 8,
                                 offset=PAGE_SIZE - 4)


class TestWriteVaRange:
    def test_roundtrip_and_page_cache_invalidation(self, vmi, hv):
        va = module_va(hv)
        before = bytes(vmi.read_va(va, 64))            # warms page cache
        payload = bytes(range(32))
        vmi.write_va_range(va + 16, payload)
        after = bytes(vmi.read_va(va, 64))
        assert after[16:48] == payload
        assert after[:16] == before[:16]
        assert after[48:] == before[48:]

    def test_spans_page_boundary(self, vmi, hv):
        va = module_va(hv) + PAGE_SIZE - 8
        payload = b"\x77" * 16                          # 8 + 8 across pages
        vmi.write_va_range(va, payload)
        assert bytes(vmi.read_va(va, 16)) == payload

    def test_accounts_stats_and_charges_clock(self, vmi, hv):
        va = module_va(hv)
        t0 = hv.clock.now
        vmi.write_va_range(va, b"\x01" * 10)
        assert vmi.stats.pages_written == 1
        assert vmi.stats.bytes_written == 10
        assert hv.clock.now > t0

    def test_write_through_protection_no_self_trap(self, vmi, hv):
        va = module_va(hv)
        vmi.protect_va_range(va, 2 * PAGE_SIZE)
        vmi.write_va_range(va + 100, b"\x42" * 300)
        traps, overflowed = vmi.drain_traps()
        assert not traps and not overflowed

    def test_empty_write_is_a_noop(self, vmi, hv):
        t0 = hv.clock.now
        vmi.write_va_range(module_va(hv), b"")
        assert vmi.stats.pages_written == 0
        assert hv.clock.now == t0
