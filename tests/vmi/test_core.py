"""Unit tests for the introspection core."""

import pytest

from repro.errors import IntrospectionFault, VMIInitError
from repro.hypervisor import Hypervisor
from repro.vmi import OSProfile, VMIInstance


@pytest.fixture(scope="module")
def env(catalog):
    hv = Hypervisor()
    hv.create_guest("Dom1", catalog, seed=1)
    profile = OSProfile.from_guest(hv.domain("Dom1").kernel)
    return hv, profile


@pytest.fixture
def vmi(env):
    hv, profile = env
    return VMIInstance(hv, "Dom1", profile)


class TestInit:
    def test_attach_to_guest(self, vmi):
        assert vmi.domain.name == "Dom1"

    def test_attach_to_dom0_rejected(self, env):
        hv, profile = env
        with pytest.raises(VMIInitError):
            VMIInstance(hv, "Dom0", profile)

    def test_attach_to_missing_rejected(self, env):
        hv, profile = env
        with pytest.raises(VMIInitError):
            VMIInstance(hv, "DomZ", profile)


class TestReads:
    def test_read_va_matches_guest_view(self, env, vmi):
        hv, _ = env
        kernel = hv.domain("Dom1").kernel
        mod = kernel.module("hal.dll")
        ground_truth = kernel.read_module_image("hal.dll")
        assert vmi.read_va(mod.base, mod.size_of_image) == ground_truth

    def test_read_pa_matches_memory(self, env, vmi):
        hv, _ = env
        kernel = hv.domain("Dom1").kernel
        kernel.memory.write(0x5678, b"paok")
        assert vmi.read_pa(0x5678, 4) == b"paok"

    def test_read_u32_u16(self, env, vmi):
        hv, _ = env
        kernel = hv.domain("Dom1").kernel
        head = kernel.symbols["PsLoadedModuleList"]
        assert vmi.read_u32(head) != 0
        assert vmi.read_u16(head) == vmi.read_u32(head) & 0xFFFF

    def test_unmapped_va_faults(self, vmi):
        with pytest.raises(IntrospectionFault):
            vmi.read_va(0x7000_0000, 16)

    def test_symbol_resolution(self, env, vmi):
        hv, _ = env
        assert vmi.symbol("PsLoadedModuleList") == \
            hv.domain("Dom1").kernel.symbols["PsLoadedModuleList"]

    def test_translate_preserves_offset(self, env, vmi):
        hv, _ = env
        mod = hv.domain("Dom1").kernel.module("hal.dll")
        pa = vmi.translate_kv2p(mod.base + 0x123)
        assert pa & 0xFFF == 0x123


class TestCaching:
    def test_cache_hits_on_repeat_read(self, env):
        hv, profile = env
        vmi = VMIInstance(hv, "Dom1", profile, enable_caches=True)
        mod = hv.domain("Dom1").kernel.module("hal.dll")
        vmi.read_va(mod.base, 0x3000)
        mapped_before = vmi.stats.pages_mapped
        vmi.read_va(mod.base, 0x3000)
        assert vmi.stats.pages_mapped == mapped_before
        assert vmi.stats.page_cache_hits >= 3

    def test_caches_disabled(self, env):
        hv, profile = env
        vmi = VMIInstance(hv, "Dom1", profile, enable_caches=False)
        mod = hv.domain("Dom1").kernel.module("hal.dll")
        vmi.read_va(mod.base, 0x2000)
        vmi.read_va(mod.base, 0x2000)
        assert vmi.stats.page_cache_hits == 0
        assert vmi.stats.pages_mapped >= 4

    def test_flush_invalidates(self, env):
        hv, profile = env
        vmi = VMIInstance(hv, "Dom1", profile, enable_caches=True)
        mod = hv.domain("Dom1").kernel.module("hal.dll")
        vmi.read_va(mod.base, 0x1000)
        vmi.flush_caches()
        before = vmi.stats.pages_mapped
        vmi.read_va(mod.base, 0x1000)
        assert vmi.stats.pages_mapped > before

    def test_stale_cache_risk_demonstrated(self, env):
        """Why caches must be flushed between rounds: remapping the
        guest page behind a cached translation yields stale bytes."""
        hv, profile = env
        kernel = hv.domain("Dom1").kernel
        vmi = VMIInstance(hv, "Dom1", profile, enable_caches=True)
        mod = kernel.module("dummy.sys")
        vmi.read_va(mod.base, 16)                      # populate caches
        kernel.aspace.write(mod.base, b"FRESHDATA")    # guest changes page
        stale = vmi.read_va(mod.base, 9)
        assert stale != b"FRESHDATA"                   # cache served old bytes
        vmi.flush_caches()
        assert vmi.read_va(mod.base, 9) == b"FRESHDATA"


class TestCostAccounting:
    def test_reads_advance_clock(self, env):
        hv, profile = env
        vmi = VMIInstance(hv, "Dom1", profile)
        t0 = hv.clock.now
        mod = hv.domain("Dom1").kernel.module("hal.dll")
        vmi.read_va(mod.base, 0x4000)
        assert hv.clock.now > t0

    def test_cached_reads_cheaper(self, env):
        hv, profile = env
        vmi = VMIInstance(hv, "Dom1", profile, enable_caches=True)
        mod = hv.domain("Dom1").kernel.module("hal.dll")
        with hv.clock.span() as cold:
            vmi.read_va(mod.base, 0x4000)
        with hv.clock.span() as warm:
            vmi.read_va(mod.base, 0x4000)
        assert warm.elapsed < cold.elapsed


class TestReadOnly:
    def test_only_write_api_is_remediation_path(self, vmi):
        """Introspection stays observational: the privileged
        remediation write (``write_va_range``) is the single sanctioned
        exception, so any other write-shaped surface is a regression."""
        writers = {name for name in dir(vmi)
                   if "write" in name and not name.startswith("_")}
        assert writers == {"write_va_range"}
