"""Batch-vs-scalar parity under fault injection.

The vectorised acquisition path stands down whenever a *live* fault
injector is installed (the injector interposes on the scalar
hypervisor primitives and draws one RNG value per guest read, so
routing around it would silently change fault schedules). These tests
pin that contract from both sides: under a live injector the two arms
are *bit-identical* — same bytes, same stats, same retries, same fault
schedule, same simulated clock to the last ulp — and under an inert
(all-rates-zero) injector the batch keeps running, because a config
that can never fault must stay simulated-time invisible.
"""

from __future__ import annotations

import pytest

from repro.cloud import build_testbed
from repro.hypervisor import FaultConfig, FaultInjector
from repro.mem.physical import PAGE_SIZE
from repro.vmi import RetryPolicy, VMIInstance
from repro.vmi.core import VMIStats

SEED = 42
#: generous budget so seeded transients recover instead of exhausting
RETRY = RetryPolicy(max_attempts=6)
STAT_FIELDS = list(vars(VMIStats()))


def make_arm(*, batch, config, retry=RETRY):
    tb = build_testbed(4, seed=SEED)
    injector = FaultInjector(config, seed=SEED)
    injector.install(tb.hypervisor)
    vmi = VMIInstance(tb.hypervisor, "Dom1", tb.profile, retry=retry,
                      batch=batch)
    return tb, injector, vmi


def module_of(tb, name="hal.dll"):
    return tb.hypervisor.domain("Dom1").kernel.module(name)


def assert_exact_parity(scalar_arm, batch_arm):
    """Under a live injector parity is exact, clock included: both
    arms execute the identical scalar loop."""
    stb, sinj, svmi = scalar_arm
    btb, binj, bvmi = batch_arm
    for field in STAT_FIELDS:
        assert getattr(bvmi.stats, field) == getattr(svmi.stats, field), \
            f"VMIStats.{field} diverged"
    assert vars(binj.stats) == vars(sinj.stats)
    assert btb.hypervisor.clock.now == stb.hypervisor.clock.now


class TestLiveInjectorParity:
    CONFIG = FaultConfig(transient_rate=0.08, torn_page_rate=0.03)

    def test_read_sequence_bit_identical(self):
        scalar_arm = make_arm(batch=False, config=self.CONFIG)
        batch_arm = make_arm(batch=True, config=self.CONFIG)
        for tb, _, vmi in (scalar_arm, batch_arm):
            mod = module_of(tb)
            results = [vmi.read_va(mod.base, mod.size_of_image)
                       for _ in range(3)]
            vmi.flush_caches()
            results.append(vmi.read_va(mod.base + 0x123, 5 * PAGE_SIZE))
            tb.results = results
        assert batch_arm[0].results == scalar_arm[0].results
        assert_exact_parity(scalar_arm, batch_arm)
        # the schedule actually exercised faults and recovery
        assert batch_arm[2].stats.transient_faults > 0
        assert batch_arm[2].stats.retries_recovered > 0

    def test_checksum_sweep_bit_identical(self):
        scalar_arm = make_arm(batch=False, config=self.CONFIG)
        batch_arm = make_arm(batch=True, config=self.CONFIG)
        for tb, _, vmi in (scalar_arm, batch_arm):
            mod = module_of(tb)
            tb.digests = [vmi.checksum_va_range(mod.base,
                                                mod.size_of_image)
                          for _ in range(3)]
        assert batch_arm[0].digests == scalar_arm[0].digests
        assert_exact_parity(scalar_arm, batch_arm)

    def test_live_injector_stands_batch_down(self):
        tb, _, vmi = make_arm(batch=True, config=self.CONFIG)
        module = module_of(tb)
        vmi.read_va(module.base, module.size_of_image)
        assert vmi.stats.batch_reads == 0
        assert vmi.stats.batch_pages == 0

    def test_exhaustion_parity(self):
        """Retry exhaustion raises identically on both arms."""
        from repro.errors import RetryExhausted
        config = FaultConfig(transient_rate=0.9)
        tight = RetryPolicy(max_attempts=2)
        messages = []
        for batch in (False, True):
            tb, _, vmi = make_arm(batch=batch, config=config, retry=tight)
            mod = module_of(tb)
            with pytest.raises(RetryExhausted) as exc:
                for _ in range(50):
                    vmi.read_va(mod.base, mod.size_of_image)
                    vmi.flush_caches()
            messages.append(str(exc.value))
        assert messages[0] == messages[1]


class TestInertInjector:
    def test_inert_injector_keeps_batch_on(self):
        tb, injector, vmi = make_arm(batch=True, config=FaultConfig())
        mod = module_of(tb)
        vmi.read_va(mod.base, mod.size_of_image)
        assert vmi.stats.batch_reads == 1
        assert injector.stats.injected == 0

    def test_inert_injector_clock_matches_bare_batch_run(self):
        """Rate 0 must be simulated-time invisible on the batch path."""
        bare = build_testbed(4, seed=SEED)
        bare_vmi = VMIInstance(bare.hypervisor, "Dom1", bare.profile,
                               retry=RETRY, batch=True)
        mod = module_of(bare)
        bare_vmi.read_va(mod.base, mod.size_of_image)

        tb, _, vmi = make_arm(batch=True, config=FaultConfig())
        vmi.read_va(mod.base, mod.size_of_image)
        assert tb.hypervisor.clock.now == bare.hypervisor.clock.now

    def test_uninstall_reenables_batch(self):
        tb, injector, vmi = make_arm(
            batch=True, config=FaultConfig(transient_rate=0.05))
        mod = module_of(tb)
        vmi.read_va(mod.base, mod.size_of_image)
        assert vmi.stats.batch_reads == 0
        injector.uninstall()
        vmi.flush_caches()
        vmi.read_va(mod.base, mod.size_of_image)
        assert vmi.stats.batch_reads == 1
