"""Fault injector + retry policy: determinism, fault taxonomy, overhead.

Covers the resilience layer end to end at the VMI level: the seeded
:class:`FaultInjector` must produce identical fault schedules for
identical (seed, read-sequence) pairs, each fault class must behave as
documented (transient raises once, torn serves stale bytes, windows
expire on the simulated clock), and — the acceptance bar — with all
rates at zero the whole layer must be simulated-time invisible.
"""

from __future__ import annotations

import pytest

from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.errors import (DomainUnreachable, PagedOutFault, RetryExhausted,
                          TransientFault, VMIInitError)
from repro.hypervisor import FaultConfig, FaultInjector, Hypervisor
from repro.rng import derive_seed
from repro.vmi import DEFAULT_RETRY_POLICY, RetryPolicy, VMIInstance

SEED = 42


@pytest.fixture
def tb():
    return build_testbed(4, seed=SEED)


def _vmi(tb, name="Dom1", retry=DEFAULT_RETRY_POLICY):
    return VMIInstance(tb.hypervisor, name, tb.profile, retry=retry)


def _list_va(tb):
    """A kernel VA that is always mapped: the module-list head."""
    return tb.profile.symbol("PsLoadedModuleList")


class TestFaultConfig:
    def test_defaults_inject_nothing(self):
        assert not FaultConfig().any_faults

    @pytest.mark.parametrize("kw", [
        {"transient_rate": -0.1},
        {"torn_page_rate": 1.5},
        {"paged_out_duration": -1.0},
        {"transient_rate": 0.6, "unreachable_rate": 0.6},
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            FaultConfig(**kw)

    def test_any_faults(self):
        assert FaultConfig(transient_rate=0.01).any_faults
        assert FaultConfig(torn_page_rate=0.01).any_faults


class TestRetryPolicy:
    def test_backoff_doubles_then_caps(self):
        policy = RetryPolicy(backoff_base=0.002, backoff_factor=2.0,
                             backoff_cap=0.005)
        assert policy.backoff(0) == pytest.approx(0.002)
        assert policy.backoff(1) == pytest.approx(0.004)
        assert policy.backoff(2) == pytest.approx(0.005)

    def test_worst_case_covers_default_paged_out_window(self):
        # The default budget must be able to sleep past the default
        # paged-out window, else backoff-retry could never help.
        assert (DEFAULT_RETRY_POLICY.worst_case_backoff
                > FaultConfig().paged_out_duration)

    @pytest.mark.parametrize("kw", [
        {"max_attempts": 0}, {"module_attempts": 0},
        {"backoff_base": -1.0}, {"backoff_factor": 0.5},
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            RetryPolicy(**kw)


class TestLifecycle:
    def test_install_uninstall_restores_pristine_path(self, tb):
        hv = tb.hypervisor
        injector = FaultInjector(FaultConfig(transient_rate=0.5), seed=1)
        injector.install(hv)
        assert "read_guest_frame" in hv.__dict__
        injector.uninstall()
        assert "read_guest_frame" not in hv.__dict__
        assert "read_guest_physical" not in hv.__dict__
        # reads go straight through the class method again
        assert hv.read_guest_frame.__func__ is Hypervisor.read_guest_frame

    def test_double_install_rejected(self, tb):
        injector = FaultInjector(seed=1)
        injector.install(tb.hypervisor)
        with pytest.raises(RuntimeError):
            injector.install(tb.hypervisor)
        injector.uninstall()

    def test_context_manager(self, tb):
        hv = tb.hypervisor
        with FaultInjector(seed=1).installed(hv):
            assert "read_guest_frame" in hv.__dict__
        assert "read_guest_frame" not in hv.__dict__

    def test_seed_derived_from_project_chain(self):
        injector = FaultInjector(seed=5)
        assert injector.seed == derive_seed(5, "fault-injector")
        assert FaultInjector(seed=6).seed != injector.seed


class TestDeterminism:
    def _run(self):
        tb = build_testbed(4, seed=SEED)
        injector = FaultInjector(FaultConfig(transient_rate=0.05,
                                             torn_page_rate=0.02),
                                 seed=SEED)
        with injector.installed(tb.hypervisor):
            mc = ModChecker(tb.hypervisor, tb.profile)
            outcome = mc.check_pool("hal.dll")
        return injector.stats.as_dict(), outcome, tb.clock.now

    def test_same_seed_same_schedule(self):
        stats_a, outcome_a, now_a = self._run()
        stats_b, outcome_b, now_b = self._run()
        assert stats_a == stats_b
        assert stats_a["reads"] > 0
        assert now_a == now_b
        assert (outcome_a.report.flagged() == outcome_b.report.flagged())
        assert outcome_a.report.degraded == outcome_b.report.degraded

    def test_different_seed_different_schedule(self, tb):
        a = FaultInjector(FaultConfig(transient_rate=0.5), seed=1)
        b = FaultInjector(FaultConfig(transient_rate=0.5), seed=2)
        draws_a = [float(a.rng.random()) for _ in range(32)]
        draws_b = [float(b.rng.random()) for _ in range(32)]
        assert draws_a != draws_b


class TestFaultClasses:
    def test_transient_raises_and_retry_recovers(self, tb):
        injector = FaultInjector(FaultConfig(transient_rate=0.10), seed=SEED)
        vmi = _vmi(tb)
        with injector.installed(tb.hypervisor):
            data = vmi.read_va(_list_va(tb), 8)
        assert len(data) == 8
        assert injector.stats.transient > 0
        assert vmi.stats.transient_faults > 0 or vmi.stats.retries == 0

    def test_transient_without_retry_propagates(self, tb):
        injector = FaultInjector(FaultConfig(transient_rate=1.0), seed=SEED)
        vmi = _vmi(tb, retry=None)
        with injector.installed(tb.hypervisor):
            with pytest.raises(TransientFault):
                vmi.read_va(_list_va(tb), 8)

    def test_retry_exhaustion_chains_the_last_fault(self, tb):
        injector = FaultInjector(FaultConfig(transient_rate=1.0), seed=SEED)
        vmi = _vmi(tb, retry=RetryPolicy(max_attempts=3, module_attempts=1))
        with injector.installed(tb.hypervisor):
            with pytest.raises(RetryExhausted) as err:
                vmi.read_va(_list_va(tb), 8)
        assert isinstance(err.value.__cause__, TransientFault)
        # RetryExhausted is deliberately NOT transient: outer layers
        # must degrade, never re-enter the retry loop.
        assert not isinstance(err.value, TransientFault)
        assert vmi.stats.retries == 2
        assert vmi.stats.transient_faults == 3

    def test_backoff_advances_simulated_clock(self, tb):
        injector = FaultInjector(FaultConfig(transient_rate=1.0), seed=SEED)
        policy = RetryPolicy(max_attempts=3, module_attempts=1)
        vmi = _vmi(tb, retry=policy)
        before = tb.clock.now
        with injector.installed(tb.hypervisor):
            with pytest.raises(RetryExhausted):
                vmi.read_va(_list_va(tb), 8)
        slept = policy.backoff(0) + policy.backoff(1)
        assert tb.clock.now - before >= slept

    def test_paged_out_window_expires_on_the_clock(self, tb):
        injector = FaultInjector(FaultConfig(paged_out_rate=1.0), seed=SEED)
        vmi = _vmi(tb, retry=None)
        va = _list_va(tb)
        with injector.installed(tb.hypervisor):
            with pytest.raises(PagedOutFault):
                vmi.read_va(va, 8)
            # window is open: even with rates zeroed the frame blocks
            injector.config = FaultConfig()
            with pytest.raises(PagedOutFault):
                vmi.read_va(va, 8)
            assert injector.stats.window_hits == 1
            tb.clock.advance(FaultConfig().paged_out_duration + 0.001)
            assert len(vmi.read_va(va, 8)) == 8

    def test_default_retry_rides_out_paged_out_window(self, tb):
        # One roll opens a 10 ms paged-out window, then rates drop to
        # zero; the default backoff (2+4+8 ms) sleeps past the window.
        injector = FaultInjector(FaultConfig(paged_out_rate=1.0), seed=SEED)
        original_roll = injector._roll

        def roll_once(domid, frame_no, name):
            try:
                return original_roll(domid, frame_no, name)
            finally:
                injector.config = FaultConfig()

        injector._roll = roll_once
        vmi = _vmi(tb)
        with injector.installed(tb.hypervisor):
            data = vmi.read_va(_list_va(tb), 8)
        assert len(data) == 8
        assert injector.stats.paged_out == 1
        assert injector.stats.window_hits > 0
        assert vmi.stats.retries > 0

    def test_unreachable_blocks_the_whole_domain(self, tb):
        injector = FaultInjector(FaultConfig(unreachable_rate=1.0),
                                 seed=SEED)
        vmi = _vmi(tb, retry=None)
        va = _list_va(tb)
        with injector.installed(tb.hypervisor):
            with pytest.raises(DomainUnreachable):
                vmi.read_va(va, 8)
            injector.config = FaultConfig()
            # a *different* address on the same domain is down too
            with pytest.raises(DomainUnreachable):
                vmi.read_va(va + 0x10000, 8)
            # but another domain is untouched
            other = _vmi(tb, "Dom2", retry=None)
            assert len(other.read_va(va, 8)) == 8
            tb.clock.advance(FaultConfig().unreachable_duration + 0.001)
            assert len(vmi.read_va(va, 8)) == 8

    def test_torn_read_serves_stale_snapshot(self, tb):
        injector = FaultInjector(FaultConfig(torn_page_rate=1.0), seed=SEED)
        vmi = _vmi(tb, retry=None, name="Dom1")
        vmi.enable_caches = False
        va = _list_va(tb)
        with injector.installed(tb.hypervisor):
            first = vmi.read_va(va, 16)       # records the snapshot
            pa = vmi.translate_kv2p(va)
            memory = tb.hypervisor.domain("Dom1").kernel.memory
            memory.write(pa, b"\xAA" * 16)     # guest mutates mid-sweep
            second = vmi.read_va(va, 16)       # torn: stale bytes
            assert second == first
            assert injector.stats.stale_served > 0
        # with the injector gone the mutation is visible
        vmi.flush_caches()
        assert vmi.read_va(va, 16) == b"\xAA" * 16

    def test_only_domains_scopes_injection(self, tb):
        injector = FaultInjector(
            FaultConfig(transient_rate=1.0, only_domains=("Dom2",)),
            seed=SEED)
        with injector.installed(tb.hypervisor):
            healthy = _vmi(tb, "Dom1", retry=None)
            assert len(healthy.read_va(_list_va(tb),
                                       8)) == 8
            sick = _vmi(tb, "Dom2", retry=None)
            with pytest.raises(TransientFault):
                sick.read_va(_list_va(tb), 8)


class TestZeroOverhead:
    """Rate 0 (or no injector) must be simulated-time invisible."""

    def _pool_run(self, *, injector=False, retry=DEFAULT_RETRY_POLICY):
        tb = build_testbed(4, seed=SEED)
        mc = ModChecker(tb.hypervisor, tb.profile, retry=retry)
        if injector:
            inj = FaultInjector(FaultConfig(), seed=SEED)
            with inj.installed(tb.hypervisor):
                outcome = mc.check_pool("hal.dll")
            assert inj.stats.injected == 0
        else:
            outcome = mc.check_pool("hal.dll")
        return tb.clock.now, outcome

    def test_rate_zero_injector_adds_no_simulated_time(self):
        bare_now, bare = self._pool_run(injector=False)
        inj_now, injected = self._pool_run(injector=True)
        assert inj_now == bare_now
        assert injected.timings.total == bare.timings.total
        assert injected.report.flagged() == bare.report.flagged()

    def test_retry_layer_free_without_faults(self):
        with_retry_now, with_retry = self._pool_run(retry=None)
        without_now, without = self._pool_run(retry=DEFAULT_RETRY_POLICY)
        assert with_retry_now == without_now
        assert with_retry.timings.total == without.timings.total


class TestVMIInitChaining:
    def test_init_error_chains_cause(self, tb):
        with pytest.raises(VMIInitError) as err:
            VMIInstance(tb.hypervisor, "NoSuchDom", tb.profile)
        assert err.value.__cause__ is not None
