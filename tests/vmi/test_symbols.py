"""Unit tests for OS profiles."""

import pytest

from repro.errors import SymbolNotFound
from repro.guest import GuestKernel
from repro.guest import ldr as _ldr
from repro.vmi.symbols import OSProfile, XP_SP2_OFFSETS


class TestOSProfile:
    def test_offsets_match_guest_structs(self):
        profile = OSProfile()
        assert profile.offset("LDR_DATA_TABLE_ENTRY.DllBase") == \
            _ldr.OFF_DLLBASE
        assert profile.offset("LDR_DATA_TABLE_ENTRY.BaseDllName") == \
            _ldr.OFF_BASEDLLNAME

    def test_missing_symbol_raises(self):
        with pytest.raises(SymbolNotFound):
            OSProfile().symbol("NoSuchGlobal")

    def test_missing_offset_raises(self):
        with pytest.raises(SymbolNotFound):
            OSProfile().offset("EPROCESS.Peb")

    def test_from_guest_captures_symbols(self, catalog):
        kernel = GuestKernel("ref", seed=1)
        kernel.boot(catalog)
        profile = OSProfile.from_guest(kernel)
        assert profile.symbol("PsLoadedModuleList") == \
            kernel.symbols["PsLoadedModuleList"]

    def test_one_profile_serves_all_clones(self, catalog):
        kernels = [GuestKernel(f"c{i}", seed=i) for i in range(3)]
        for k in kernels:
            k.boot(catalog)
        profile = OSProfile.from_guest(kernels[0])
        for k in kernels[1:]:
            assert profile.symbol("PsLoadedModuleList") == \
                k.symbols["PsLoadedModuleList"]

    def test_default_offsets_copied_not_shared(self):
        a, b = OSProfile(), OSProfile()
        assert a.offsets == XP_SP2_OFFSETS
        assert a.offsets is not b.offsets
