"""Unit tests for the incremental-check manifest store.

Includes the LRU stats-asymmetry regression: the manifest store keeps
its own hit/miss accounting, so its lookups must be invisible to the
underlying :class:`LRUCache` counters (and to the VMI page/V2P cache
series) — the bug class where one logical lookup was counted twice let
a derived hit-rate exceed 1.0.
"""

import pytest

from repro.hypervisor.faults import FaultConfig, FaultInjector
from repro.vmi.cache import CheckManifest, LRUCache, ManifestStore


def _manifest(vm="Dom1", module="hal.dll", generation=1, verified_at=0.0,
              base=0x80010000, size=0x2000):
    return CheckManifest(
        vm_name=vm, module_name=module, boot_generation=generation,
        base=base, size=size, ldr_entry_va=0x80550000,
        page_digests=(b"\x00" * 16, b"\x01" * 16),
        content_key="deadbeef", parsed=None, verified_at=verified_at)


class TestPeekPop:
    def test_peek_counts_nothing(self):
        c = LRUCache(4)
        c.put("a", 1)
        assert c.peek("a") == 1
        assert c.peek("zz") is None
        assert (c.hits, c.misses) == (0, 0)

    def test_peek_does_not_promote(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.peek("a")             # must NOT refresh recency
        c.put("c", 3)           # evicts a (peek left it oldest)
        assert c.peek("a") is None
        assert c.peek("b") == 2

    def test_pop_is_stats_neutral(self):
        c = LRUCache(4)
        c.put("a", 1)
        assert c.pop("a") == 1
        assert c.pop("a") is None
        assert (c.hits, c.misses) == (0, 0)

    def test_contains_and_keys(self):
        c = LRUCache(4)
        c.put("a", 1)
        c.put("b", 2)
        assert "a" in c and "zz" not in c
        assert c.keys() == ["a", "b"]


class TestManifestStore:
    def test_lookup_absent(self):
        store = ManifestStore()
        assert store.lookup("Dom1", "hal.dll",
                            boot_generation=1, now=0.0) is None
        assert store.stats.misses == {"absent": 1}
        assert store.stats.hits == 0

    def test_commit_then_hit(self):
        store = ManifestStore()
        store.commit(_manifest())
        m = store.lookup("Dom1", "hal.dll", boot_generation=1, now=5.0)
        assert m is not None and m.content_key == "deadbeef"
        assert store.stats.hits == 1
        assert store.stats.hit_rate == 1.0

    def test_generation_mismatch_drops_entry(self):
        store = ManifestStore()
        store.commit(_manifest(generation=1))
        assert store.lookup("Dom1", "hal.dll",
                            boot_generation=2, now=0.0) is None
        assert store.stats.misses == {"generation": 1}
        assert len(store) == 0      # dropped, not kept around

    def test_ttl_expiry(self):
        store = ManifestStore(ttl=100.0)
        store.commit(_manifest(verified_at=50.0))
        assert store.lookup("Dom1", "hal.dll",
                            boot_generation=1, now=149.9) is not None
        assert store.lookup("Dom1", "hal.dll",
                            boot_generation=1, now=150.0) is None
        assert store.stats.misses == {"ttl": 1}
        assert len(store) == 0

    def test_ttl_none_never_expires(self):
        store = ManifestStore()
        store.commit(_manifest(verified_at=0.0))
        assert store.lookup("Dom1", "hal.dll",
                            boot_generation=1, now=1e9) is not None

    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            ManifestStore(ttl=0.0)
        with pytest.raises(ValueError):
            ManifestStore(ttl=-5.0)

    def test_invalidate_by_vm(self):
        store = ManifestStore()
        store.commit(_manifest(vm="Dom1", module="hal.dll"))
        store.commit(_manifest(vm="Dom1", module="ntfs.sys"))
        store.commit(_manifest(vm="Dom2", module="hal.dll"))
        assert store.invalidate("Dom1", reason="evict") == 2
        assert len(store) == 1
        assert store.stats.invalidations == {"evict": 2}

    def test_invalidate_one_module(self):
        store = ManifestStore()
        store.commit(_manifest(vm="Dom1", module="hal.dll"))
        store.commit(_manifest(vm="Dom1", module="ntfs.sys"))
        assert store.invalidate("Dom1", "hal.dll",
                                reason="page-delta") == 1
        assert store.lookup("Dom1", "ntfs.sys",
                            boot_generation=1, now=0.0) is not None

    def test_invalidate_all(self):
        store = ManifestStore()
        store.commit(_manifest(vm="Dom1"))
        store.commit(_manifest(vm="Dom2"))
        assert store.invalidate(reason="breaker") == 2
        assert len(store) == 0

    def test_invalidate_repaired_reason(self):
        """The repair engine retires pre-repair digests under the
        ``repaired`` reason so the taxonomy separates healing from
        eviction and tamper churn."""
        store = ManifestStore()
        store.commit(_manifest(vm="Dom2", module="hal.dll"))
        store.commit(_manifest(vm="Dom2", module="ntfs.sys"))
        assert store.invalidate("Dom2", "hal.dll", reason="repaired") == 1
        assert store.stats.invalidations == {"repaired": 1}
        assert store.lookup("Dom2", "hal.dll",
                            boot_generation=1, now=0.0) is None

    def test_invalidate_empty_is_silent(self):
        """An invalidation storm against an empty store must not
        pollute the reason counters with zero-count entries."""
        store = ManifestStore()
        assert store.invalidate("Dom1", reason="migration") == 0
        assert store.stats.invalidations == {}

    def test_lookups_invisible_to_internal_lru(self):
        """Regression (stats asymmetry): the store's own accounting
        must not double into the LRU's hit/miss counters."""
        store = ManifestStore()
        store.commit(_manifest())
        for now in range(10):
            store.lookup("Dom1", "hal.dll", boot_generation=1,
                         now=float(now))
        store.lookup("DomX", "hal.dll", boot_generation=1, now=0.0)
        assert store.stats.hits == 10
        assert store.stats.missed == 1
        assert (store._entries.hits, store._entries.misses) == (0, 0)
        assert store.stats.hit_rate <= 1.0

    def test_capacity_eviction(self):
        store = ManifestStore(capacity=2)
        store.commit(_manifest(vm="Dom1"))
        store.commit(_manifest(vm="Dom2"))
        store.commit(_manifest(vm="Dom3"))
        assert len(store) == 2
        assert store.lookup("Dom1", "hal.dll",
                            boot_generation=1, now=0.0) is None


class TestStatsUnderFaults:
    def test_hit_rates_bounded_under_torn_reads(self, catalog):
        """Regression: every published hit-rate stays a true ratio
        (<= 1.0) even when the fault injector tears reads — manifest
        sweeps must not be double-counted through the page cache."""
        from repro.cloud import build_testbed
        from repro.core import ModChecker
        from repro.rng import derive_seed

        tb = build_testbed(4, seed=42)
        injector = FaultInjector(FaultConfig(torn_page_rate=0.05),
                                 seed=derive_seed(42, "torn"))
        injector.install(tb.hypervisor)
        mc = ModChecker(tb.hypervisor, tb.profile, incremental=True)
        for _ in range(4):
            mc.check_pool("hal.dll")
        assert 0.0 <= mc.manifests.stats.hit_rate <= 1.0
        for vmi in mc._vmis.values():
            assert 0.0 <= vmi.page_cache.hit_rate <= 1.0
            assert 0.0 <= vmi.v2p_cache.hit_rate <= 1.0
            # the sweep bypasses the page cache entirely: checksummed
            # frames never surface as page-cache hits or misses
            assert (vmi.page_cache.hits + vmi.page_cache.misses
                    <= vmi.stats.pages_mapped + vmi.stats.page_cache_hits)
