"""Tests for memory acquisition + offline analysis."""

import pytest

from repro.attacks import RuntimeCodePatchAttack
from repro.cloud import build_testbed
from repro.core import (IntegrityChecker, ModChecker, ModuleParser,
                        ModuleSearcher)
from repro.core.carver import ModuleCarver
from repro.errors import IntrospectionFault
from repro.vmi.dump import DumpAnalyzer, acquire_dump


@pytest.fixture(scope="module")
def tb():
    return build_testbed(3, seed=42)


@pytest.fixture(scope="module")
def dump(tb):
    return acquire_dump(tb.hypervisor, "Dom1", tb.profile)


class TestAcquisition:
    def test_metadata(self, tb, dump):
        assert dump.vm_name == "Dom1"
        assert dump.cr3 == tb.hypervisor.guest_cr3("Dom1")
        assert dump.n_frames == tb.hypervisor.domain(
            "Dom1").kernel.memory.n_frames

    def test_dump_is_a_copy(self, tb, dump):
        kernel = tb.hypervisor.domain("Dom1").kernel
        mod = kernel.module("disk.sys")
        before = DumpAnalyzer(dump).read_va(mod.base, 16)
        kernel.aspace.write(mod.base + 4, b"LIVEEDIT")
        after = DumpAnalyzer(dump).read_va(mod.base, 16)
        assert before == after                 # dump unaffected

    def test_acquisition_charges_dom0(self, tb):
        before = tb.hypervisor.dom0_cpu_seconds
        acquire_dump(tb.hypervisor, "Dom2", tb.profile)
        assert tb.hypervisor.dom0_cpu_seconds > before

    def test_dump_dom0_rejected(self, tb):
        with pytest.raises(IntrospectionFault):
            acquire_dump(tb.hypervisor, "Dom0", tb.profile)

    def test_sparse(self, dump):
        assert dump.resident_bytes < 8 * 1024 * 1024


class TestOfflineReads:
    def test_read_va_matches_live(self, tb, dump):
        mc = ModChecker(tb.hypervisor, tb.profile)
        live = mc.vmi_for("Dom1")
        analyzer = DumpAnalyzer(dump)
        kernel = tb.hypervisor.domain("Dom1").kernel
        mod = kernel.module("hal.dll")
        # NB: 'Dom1' memory was modified by the copy test above, but
        # hal.dll was not; both reads must agree on it regardless.
        assert analyzer.read_va(mod.base, mod.size_of_image) == \
            live.read_va(mod.base, mod.size_of_image)

    def test_unmapped_va_faults(self, dump):
        with pytest.raises(IntrospectionFault):
            DumpAnalyzer(dump).read_va(0x6000_0000, 8)

    def test_symbols(self, tb, dump):
        assert DumpAnalyzer(dump).symbol("PsLoadedModuleList") == \
            tb.profile.symbol("PsLoadedModuleList")


class TestOfflineTooling:
    def test_searcher_runs_on_dump(self, tb, dump):
        searcher = ModuleSearcher(DumpAnalyzer(dump))
        names = [e.name for e in searcher.list_modules()]
        assert names == list(tb.catalog)

    def test_carver_runs_on_dump(self, tb, dump):
        carver = ModuleCarver(DumpAnalyzer(dump))
        kernel = tb.hypervisor.domain("Dom1").kernel
        assert {m.base for m in carver.carve()} == \
            {m.base for m in kernel.modules.values()}

    def test_offline_cross_check_of_dumps(self):
        """The forensics workflow end to end: acquire dumps from every
        clone, then run the integrity vote entirely offline."""
        tb = build_testbed(4, seed=42)
        RuntimeCodePatchAttack().apply(
            tb.hypervisor.domain("Dom3").kernel, tb.catalog["hal.dll"])
        dumps = [acquire_dump(tb.hypervisor, vm, tb.profile)
                 for vm in tb.vm_names]
        # guests may keep changing after acquisition; irrelevant now
        parsed = []
        for dump in dumps:
            searcher = ModuleSearcher(DumpAnalyzer(dump))
            copy = searcher.copy_module("hal.dll")
            parsed.append(ModuleParser().parse(copy))
        report = IntegrityChecker().check_pool(parsed)
        assert report.flagged() == ["Dom3"]
        assert report.mismatched_regions("Dom3") == (".text",)
