"""Differential harness: batched vs scalar VMI acquisition.

Two hypervisors are built from the same seed — one introspected with
``batch=False`` (the scalar reference loop), one with ``batch=True``
(the vectorised path) — and driven through identical operation
sequences. Everything observable must agree: returned bytes, digests,
fault type and message, every non-batch ``VMIStats`` counter, both
caches' hit/miss counters and LRU key order, and the simulated clock
(to float tolerance: the batch pays one aggregated charge where the
scalar loop pays n, so totals differ only in final-ulp association).
"""

import pytest

from repro.errors import IntrospectionFault
from repro.hypervisor import Hypervisor
from repro.mem.physical import PAGE_SIZE
from repro.obs import NULL_OBS, make_observability
from repro.vmi import OSProfile, VMIInstance
from repro.vmi.core import BATCH_MIN_PAGES, VMIStats

SEED = 1
#: fields every differential check compares exactly; the batch_*
#: counters are the two arms' intentional difference
STAT_FIELDS = [f for f in vars(VMIStats()) if not f.startswith("batch_")]


def make_arm(catalog, *, batch, enable_caches=True, traced=False):
    hv = Hypervisor()
    hv.create_guest("Dom1", catalog, seed=SEED)
    profile = OSProfile.from_guest(hv.domain("Dom1").kernel)
    obs = make_observability(hv.clock) if traced else NULL_OBS
    vmi = VMIInstance(hv, "Dom1", profile, enable_caches=enable_caches,
                      batch=batch, obs=obs)
    return hv, vmi


def make_arms(catalog, **kwargs):
    return (make_arm(catalog, batch=False, **kwargs),
            make_arm(catalog, batch=True, **kwargs))


def assert_parity(scalar_arm, batch_arm):
    (shv, svmi), (bhv, bvmi) = scalar_arm, batch_arm
    for field in STAT_FIELDS:
        assert getattr(bvmi.stats, field) == getattr(svmi.stats, field), \
            f"VMIStats.{field} diverged"
    for name in ("v2p_cache", "page_cache"):
        scache, bcache = getattr(svmi, name), getattr(bvmi, name)
        assert bcache.hits == scache.hits, f"{name} hits diverged"
        assert bcache.misses == scache.misses, f"{name} misses diverged"
        assert bcache.keys() == scache.keys(), f"{name} LRU order diverged"
    assert bhv.clock.now == pytest.approx(shv.clock.now, rel=1e-9)


def run_both(arms, op):
    """Apply ``op(vmi)`` on both arms; return (scalar, batch) results."""
    (_, svmi), (_, bvmi) = arms
    return op(svmi), op(bvmi)


@pytest.fixture
def module(catalog):
    hv = Hypervisor()
    hv.create_guest("Dom1", catalog, seed=SEED)
    return hv.domain("Dom1").kernel.module("hal.dll")


class TestReadParity:
    def test_module_image_bytes_identical(self, catalog, module):
        arms = make_arms(catalog)
        scalar, batched = run_both(
            arms, lambda v: v.read_va(module.base, module.size_of_image))
        assert batched == scalar
        assert_parity(*arms)
        _, bvmi = arms[1]
        assert bvmi.stats.batch_reads == 1
        assert bvmi.stats.batch_fallbacks == 0

    def test_unaligned_start_and_tail(self, catalog, module):
        arms = make_arms(catalog)
        scalar, batched = run_both(
            arms,
            lambda v: v.read_va(module.base + 0x123, 5 * PAGE_SIZE + 7))
        assert batched == scalar
        assert_parity(*arms)

    def test_repeat_read_warm_caches(self, catalog, module):
        """Second pass is all cache hits on both arms — same series."""
        arms = make_arms(catalog)
        for _ in range(2):
            scalar, batched = run_both(
                arms, lambda v: v.read_va(module.base, 6 * PAGE_SIZE))
            assert batched == scalar
        assert_parity(*arms)
        _, bvmi = arms[1]
        assert bvmi.stats.page_cache_hits >= 6

    def test_caches_disabled(self, catalog, module):
        arms = make_arms(catalog, enable_caches=False)
        scalar, batched = run_both(
            arms, lambda v: v.read_va(module.base, module.size_of_image))
        assert batched == scalar
        assert_parity(*arms)

    def test_traced_charge_attribution(self, catalog, module):
        """Under a live tracer both arms charge the same per-op totals."""
        arms = make_arms(catalog, traced=True)
        scalar, batched = run_both(
            arms, lambda v: v.read_va(module.base, module.size_of_image))
        assert batched == scalar
        assert_parity(*arms)
        (_, svmi), (_, bvmi) = arms
        stotals = svmi.obs.tracer.total_by_op()
        btotals = bvmi.obs.tracer.total_by_op()
        assert set(btotals) == set(stotals)
        for op, total in stotals.items():
            assert btotals[op] == pytest.approx(total, rel=1e-9), op
        # the profiler's hotspot attribution stays on vmi.read_page
        assert any(s.name == "vmi.read_page"
                   for s in bvmi.obs.tracer.finished_spans())

    def test_stale_cache_served_identically(self, catalog, module):
        """A stale cached page must be *served* by both arms alike."""
        arms = make_arms(catalog)
        run_both(arms, lambda v: v.read_va(module.base, 6 * PAGE_SIZE))
        for hv, _ in arms:
            hv.domain("Dom1").kernel.aspace.write(module.base, b"FRESHDATA")
        scalar, batched = run_both(
            arms, lambda v: v.read_va(module.base, 6 * PAGE_SIZE))
        assert batched == scalar
        assert scalar[:9] != b"FRESHDATA"          # both served stale bytes
        assert_parity(*arms)

    def test_read_va_range_batch_forces_small_ranges(self, catalog, module):
        """The explicit batch entry point works below BATCH_MIN_PAGES."""
        arms = make_arms(catalog)
        (_, svmi), (_, bvmi) = arms
        length = (BATCH_MIN_PAGES - 2) * PAGE_SIZE
        scalar = svmi.read_va(module.base, length)
        batched = bvmi.read_va_range_batch(module.base, length)
        assert batched == scalar
        assert_parity(*arms)
        assert bvmi.stats.batch_reads == 1

    def test_dispatch_threshold(self, catalog, module):
        """Plain read_va stays scalar below BATCH_MIN_PAGES covered."""
        _, vmi = make_arm(catalog, batch=True)
        vmi.read_va(module.base, (BATCH_MIN_PAGES - 1) * PAGE_SIZE)
        assert vmi.stats.batch_reads == 0
        vmi.flush_caches()
        vmi.read_va(module.base, BATCH_MIN_PAGES * PAGE_SIZE)
        assert vmi.stats.batch_reads == 1


class TestFaultParity:
    def hole_in(self, hv, module, page_index):
        kernel = hv.domain("Dom1").kernel
        kernel.aspace.page_tables.unmap_page(
            module.base + page_index * PAGE_SIZE)

    def test_hole_mid_range(self, catalog, module):
        """Both arms raise the identical fault with identical partial
        accounting; the batch arm stands down before any side effect."""
        arms = make_arms(catalog)
        for hv, _ in arms:
            self.hole_in(hv, module, 3)
        excs = []
        for _, vmi in arms:
            with pytest.raises(IntrospectionFault) as exc:
                vmi.read_va(module.base, 6 * PAGE_SIZE)
            excs.append(exc.value)
        assert str(excs[1]) == str(excs[0])
        assert_parity(*arms)
        _, bvmi = arms[1]
        assert bvmi.stats.batch_fallbacks == 1
        assert bvmi.stats.batch_reads == 0

    def test_hole_on_first_page_unaligned_va(self, catalog, module):
        """The fault names the *requested* unaligned VA for page 0."""
        arms = make_arms(catalog)
        for hv, _ in arms:
            self.hole_in(hv, module, 0)
        messages = []
        for _, vmi in arms:
            with pytest.raises(IntrospectionFault) as exc:
                vmi.read_va(module.base + 0x42, 5 * PAGE_SIZE)
            messages.append(str(exc.value))
        assert messages[0] == messages[1]
        assert f"{module.base + 0x42:#x}" in messages[0]
        assert_parity(*arms)

    def test_recovery_after_fault(self, catalog, module):
        """After a fault both arms keep serving good ranges in lockstep."""
        arms = make_arms(catalog)
        for hv, _ in arms:
            self.hole_in(hv, module, 5)
        for _, vmi in arms:
            with pytest.raises(IntrospectionFault):
                vmi.read_va(module.base, 8 * PAGE_SIZE)
        scalar, batched = run_both(
            arms, lambda v: v.read_va(module.base, 5 * PAGE_SIZE))
        assert batched == scalar
        assert_parity(*arms)


class TestChecksumParity:
    def test_full_sweep_digests(self, catalog, module):
        arms = make_arms(catalog)
        scalar, batched = run_both(
            arms,
            lambda v: v.checksum_va_range(module.base,
                                          module.size_of_image))
        assert batched == scalar
        assert_parity(*arms)
        _, bvmi = arms[1]
        assert bvmi.stats.batch_reads == 1
        assert bvmi.stats.pages_checksummed == len(batched)

    def test_partial_tail_masked(self, catalog, module):
        """A range ending mid-page digests only the in-range bytes."""
        arms = make_arms(catalog)
        scalar, batched = run_both(
            arms,
            lambda v: v.checksum_va_range(module.base,
                                          6 * PAGE_SIZE + 0x39))
        assert batched == scalar
        assert len(batched) == 7
        assert_parity(*arms)

    def test_unaligned_start(self, catalog, module):
        arms = make_arms(catalog)
        scalar, batched = run_both(
            arms,
            lambda v: v.checksum_va_range(module.base + 0x800,
                                          5 * PAGE_SIZE))
        assert batched == scalar
        assert_parity(*arms)

    def test_sweep_bypasses_page_cache(self, catalog, module):
        """The batched sweep must not populate or read the page cache."""
        _, vmi = make_arm(catalog, batch=True)
        vmi.checksum_va_range(module.base, module.size_of_image)
        assert len(vmi.page_cache) == 0
        assert vmi.stats.page_cache_hits == 0

    def test_checksum_pages_subset(self, catalog, module):
        arms = make_arms(catalog)
        indices = [0, 2, 3, 5, 6]
        scalar, batched = run_both(
            arms,
            lambda v: v.checksum_pages(module.base, module.size_of_image,
                                       indices))
        assert batched == scalar
        assert set(batched) == set(indices)
        assert_parity(*arms)

    def test_checksum_pages_invalid_index_raises_both(self, catalog,
                                                      module):
        arms = make_arms(catalog)
        n_pages = -(-module.size_of_image // PAGE_SIZE)
        bad = [0, 1, 2, 3, n_pages + 7]
        for _, vmi in arms:
            with pytest.raises(ValueError):
                vmi.checksum_pages(module.base, module.size_of_image, bad)
        assert_parity(*arms)

    def test_digests_match_scalar_checksum_of_bytes(self, catalog, module):
        """Sweep digests equal md5 of the actual guest bytes."""
        import hashlib
        hv, vmi = make_arm(catalog, batch=True)
        digests = vmi.checksum_va_range(module.base, module.size_of_image)
        image = hv.domain("Dom1").kernel.read_module_image("hal.dll")
        for i, digest in enumerate(digests):
            page = image[i * PAGE_SIZE:(i + 1) * PAGE_SIZE]
            page += bytes(PAGE_SIZE - len(page))
            assert digest == hashlib.md5(page).digest()


class TestOperationMix:
    """A randomised interleaving of every read-side operation."""

    @pytest.mark.parametrize("seed", range(4))
    def test_mixed_sequence(self, catalog, module, seed):
        import random
        rng = random.Random(seed)
        arms = make_arms(catalog)
        base, size = module.base, module.size_of_image
        n_pages = -(-size // PAGE_SIZE)
        for _ in range(25):
            choice = rng.randrange(5)
            if choice == 0:
                start = rng.randrange(size - 1)
                length = rng.randrange(1, size - start + 1)
                scalar, batched = run_both(
                    arms, lambda v, s=start, n=length: v.read_va(base + s,
                                                                 n))
            elif choice == 1:
                offset = rng.randrange(size // 8) * 4
                scalar, batched = run_both(
                    arms, lambda v, o=offset: v.read_u32(base + o))
            elif choice == 2:
                start = rng.randrange(size - 1)
                length = rng.randrange(1, size - start + 1)
                scalar, batched = run_both(
                    arms,
                    lambda v, s=start, n=length: v.checksum_va_range(
                        base + s, n))
            elif choice == 3:
                k = rng.randrange(1, n_pages + 1)
                idx = rng.sample(range(n_pages), k)
                scalar, batched = run_both(
                    arms, lambda v, i=tuple(idx): v.checksum_pages(
                        base, size, i))
            else:
                scalar, batched = run_both(
                    arms, lambda v: v.flush_caches())
            assert batched == scalar
        assert_parity(*arms)
