"""VMI event-driven APIs + sweep accounting regressions.

Covers the three introspection-side pieces of event-driven monitoring
(:meth:`protect_va_range`, :meth:`drain_traps`, :meth:`checksum_pages`)
and two sweep-path regressions: retry attempts must not double-count
``pages_checksummed`` or double-charge ``page_checksum``, and a range
ending mid-page must mask the co-resident bytes past its tail.
"""

from __future__ import annotations

import pytest

from repro.cloud import build_testbed
from repro.hypervisor import FaultConfig, FaultInjector
from repro.mem.physical import PAGE_SIZE
from repro.vmi import DEFAULT_RETRY_POLICY, VMIInstance

SEED = 42


@pytest.fixture
def tb():
    return build_testbed(4, seed=SEED)


def _vmi(tb, name="Dom1", retry=DEFAULT_RETRY_POLICY, **kwargs):
    return VMIInstance(tb.hypervisor, name, tb.profile, retry=retry,
                       **kwargs)


def _module(tb, name="hal.dll", dom="Dom1"):
    return tb.hypervisor.domain(dom).kernel.module(name)


class TestRetryAccounting:
    """Regression: a faulted checksum attempt used to count and charge
    the page *before* the digest succeeded, so every retry inflated
    ``pages_checksummed`` and billed ``page_checksum`` again."""

    def _sweep_counts(self, *, transient_rate):
        tb = build_testbed(4, seed=SEED)
        vmi = _vmi(tb)
        mod = _module(tb)
        injector = FaultInjector(FaultConfig(transient_rate=transient_rate),
                                 seed=SEED)
        with injector.installed(tb.hypervisor):
            digests = vmi.checksum_va_range(mod.base, mod.size_of_image)
        return vmi.stats, len(digests)

    def test_faulted_attempts_do_not_inflate_page_count(self):
        clean, n_pages = self._sweep_counts(transient_rate=0.0)
        faulted, n_pages_f = self._sweep_counts(transient_rate=0.15)
        assert n_pages_f == n_pages
        assert faulted.retries > 0          # the schedule really faulted
        assert clean.pages_checksummed == n_pages
        assert faulted.pages_checksummed == n_pages

    def test_checksum_cost_charged_once_per_page(self, tb):
        # With retries exercised, the page_checksum spend must equal
        # pages x unit cost: the retry layer bills retry_probe/backoff
        # itself, never a second page_checksum.
        vmi = _vmi(tb)
        mod = _module(tb)
        injector = FaultInjector(FaultConfig(transient_rate=0.15), seed=SEED)
        before = tb.hypervisor.dom0_cpu_seconds
        with injector.installed(tb.hypervisor):
            digests = vmi.checksum_va_range(mod.base, mod.size_of_image)
        assert vmi.stats.retries > 0
        spent = tb.hypervisor.dom0_cpu_seconds - before
        checksum_spend = len(digests) * vmi.costs.page_checksum
        overhead = (vmi.stats.retries
                    * (vmi.costs.retry_probe + vmi.costs.page_map))
        # spend = per-page digests + translate walks + retry overhead;
        # the old bug added ~retries extra page_checksum units on top.
        assert spent < checksum_spend + overhead + \
            len(digests) * 2 * vmi.costs.translate_walk * 4


class TestTailMasking:
    """Regression: the final page of a range ending mid-page used to be
    digested whole, so neighbours co-resident past the image tail
    perturbed the sweep."""

    def test_beyond_tail_bytes_cannot_perturb_digests(self, tb):
        vmi = _vmi(tb, enable_caches=False)
        mod = _module(tb)
        kernel = tb.hypervisor.domain("Dom1").kernel
        length = mod.size_of_image - 16          # unaligned tail
        before = vmi.checksum_va_range(mod.base, length)
        kernel.aspace.write(mod.base + length, b"\xEE" * 16)
        assert vmi.checksum_va_range(mod.base, length) == before
        # ...while a write *inside* the range still moves the digest
        kernel.aspace.write(mod.base + length - 1, b"\xEE")
        after = vmi.checksum_va_range(mod.base, length)
        assert after[:-1] == before[:-1] and after[-1] != before[-1]

    def test_checksum_pages_masks_the_same_tail(self, tb):
        vmi = _vmi(tb)
        mod = _module(tb)
        length = mod.size_of_image - 16
        sweep = vmi.checksum_va_range(mod.base, length)
        picked = vmi.checksum_pages(mod.base, length,
                                    range(len(sweep)))
        assert tuple(picked[i] for i in range(len(sweep))) == sweep


class TestChecksumPages:
    def test_requires_page_alignment(self, tb):
        vmi = _vmi(tb)
        with pytest.raises(ValueError, match="page-aligned"):
            vmi.checksum_pages(0x1001, PAGE_SIZE, [0])

    def test_out_of_range_index_rejected(self, tb):
        vmi = _vmi(tb)
        mod = _module(tb)
        with pytest.raises(ValueError, match="outside range"):
            vmi.checksum_pages(mod.base, PAGE_SIZE, [1])

    def test_duplicate_indices_digested_once(self, tb):
        vmi = _vmi(tb)
        mod = _module(tb)
        vmi.checksum_pages(mod.base, 4 * PAGE_SIZE, [2, 2, 0])
        assert vmi.stats.pages_checksummed == 2


class TestProtectVaRange:
    def test_arms_every_page_and_traps_writes(self, tb):
        vmi = _vmi(tb)
        mod = _module(tb)
        kernel = tb.hypervisor.domain("Dom1").kernel
        gfns = vmi.protect_va_range(mod.base, mod.size_of_image)
        n_pages = -(-mod.size_of_image // PAGE_SIZE)
        assert len(gfns) == n_pages and all(g is not None for g in gfns)
        assert vmi.stats.pages_protected == n_pages
        kernel.aspace.write(mod.base + PAGE_SIZE + 5, b"!")
        traps, overflowed = vmi.drain_traps()
        assert not overflowed
        assert [t.gfn for t in traps] == [gfns[1]]
        assert vmi.stats.traps_drained == 1

    def test_capacity_refusal_reported_as_none(self, tb):
        from repro.hypervisor.xen import Hypervisor
        hv = Hypervisor(protect_limit=2)
        hv.create_guest("DomA", tb.catalog, seed=1)
        from repro.vmi import OSProfile
        profile = OSProfile.from_guest(hv.domain("DomA").kernel)
        vmi = VMIInstance(hv, "DomA", profile)
        mod = hv.domain("DomA").kernel.module("hal.dll")
        gfns = vmi.protect_va_range(mod.base, 4 * PAGE_SIZE)
        assert [g is not None for g in gfns] == [True, True, False, False]
        assert vmi.stats.pages_unprotectable == 2

    def test_empty_drain_is_cheap_but_charged(self, tb):
        vmi = _vmi(tb)
        t0 = tb.clock.now
        traps, overflowed = vmi.drain_traps()
        assert traps == () and not overflowed
        assert tb.clock.now - t0 == pytest.approx(vmi.costs.small_read)
