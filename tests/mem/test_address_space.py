"""Unit tests for the kernel VA allocator."""

import pytest

from repro.errors import AddressSpaceExhausted
from repro.mem.address_space import (DRIVER_AREA_BASE, DRIVER_AREA_END,
                                     KERNEL_BASE, KernelAddressSpace)
from repro.mem.physical import PAGE_SIZE, PhysicalMemory


@pytest.fixture
def aspace():
    return KernelAddressSpace(PhysicalMemory(4096 * PAGE_SIZE), seed=1)


class TestAllocation:
    def test_fixed_allocations_start_at_kernel_base(self, aspace):
        assert aspace.alloc_fixed(0x100, "a") == KERNEL_BASE

    def test_fixed_allocations_page_granular(self, aspace):
        a = aspace.alloc_fixed(0x100, "a")
        b = aspace.alloc_fixed(0x100, "b")
        assert b == a + PAGE_SIZE

    def test_driver_allocations_in_driver_area(self, aspace):
        base = aspace.alloc_driver_image(0x5000, "mod")
        assert DRIVER_AREA_BASE <= base < DRIVER_AREA_END

    def test_driver_bases_page_aligned(self, aspace):
        for i in range(5):
            base = aspace.alloc_driver_image(0x3000, f"m{i}")
            assert base % PAGE_SIZE == 0

    def test_allocated_memory_readable_writable(self, aspace):
        base = aspace.alloc_fixed(0x2000, "buf")
        aspace.write(base + 100, b"data!")
        assert aspace.read(base + 100, 5) == b"data!"

    def test_regions_recorded(self, aspace):
        base = aspace.alloc_fixed(0x1000, "globals")
        region = aspace.regions.by_name("globals")
        assert region.base == base and region.size == 0x1000


class TestRandomisation:
    def test_different_seeds_different_driver_bases(self):
        mems = [PhysicalMemory(4096 * PAGE_SIZE) for _ in range(2)]
        a = KernelAddressSpace(mems[0], seed=1)
        b = KernelAddressSpace(mems[1], seed=2)
        bases_a = [a.alloc_driver_image(0x4000, f"m{i}") for i in range(4)]
        bases_b = [b.alloc_driver_image(0x4000, f"m{i}") for i in range(4)]
        assert bases_a != bases_b

    def test_same_seed_reproducible(self):
        mems = [PhysicalMemory(4096 * PAGE_SIZE) for _ in range(2)]
        a = KernelAddressSpace(mems[0], seed=9)
        b = KernelAddressSpace(mems[1], seed=9)
        assert [a.alloc_driver_image(0x4000, f"m{i}") for i in range(4)] == \
            [b.alloc_driver_image(0x4000, f"m{i}") for i in range(4)]

    def test_fixed_area_not_randomised(self):
        mems = [PhysicalMemory(4096 * PAGE_SIZE) for _ in range(2)]
        a = KernelAddressSpace(mems[0], seed=1)
        b = KernelAddressSpace(mems[1], seed=2)
        assert a.alloc_fixed(0x1000, "g") == b.alloc_fixed(0x1000, "g")

    def test_randomisation_can_be_disabled(self):
        mems = [PhysicalMemory(4096 * PAGE_SIZE) for _ in range(2)]
        a = KernelAddressSpace(mems[0], seed=1, randomize_module_bases=False)
        b = KernelAddressSpace(mems[1], seed=2, randomize_module_bases=False)
        assert a.alloc_driver_image(0x4000, "m") == \
            b.alloc_driver_image(0x4000, "m")


class TestExhaustion:
    def test_driver_arena_exhaustion(self):
        aspace = KernelAddressSpace(PhysicalMemory(0x8000 * PAGE_SIZE),
                                    seed=1, randomize_module_bases=False)
        arena = DRIVER_AREA_END - DRIVER_AREA_BASE
        with pytest.raises(AddressSpaceExhausted):
            # Ask for more than the arena in chunks.
            for i in range(arena // 0x100000 + 2):
                aspace.alloc_driver_image(0x100000, f"big{i}")
