"""Unit tests for PSE 4 MiB large-page support."""

import pytest

from repro.errors import PageFault
from repro.hypervisor import Hypervisor
from repro.mem.paging import (LARGE_PAGE_SIZE, AddressTranslator,
                              PageTableBuilder)
from repro.mem.physical import PAGE_SIZE, FrameAllocator, PhysicalMemory
from repro.vmi import OSProfile, VMIInstance


@pytest.fixture
def setup():
    mem = PhysicalMemory(4096 * PAGE_SIZE)   # 16 MiB
    alloc = FrameAllocator(mem, reserve_low=4)
    builder = PageTableBuilder(mem, alloc)
    return mem, alloc, builder


def _aligned_frames(alloc):
    """Allocate 1024 contiguous frames starting at a 4 MiB boundary."""
    first = alloc.alloc(1)
    pad = (-first) % 1024
    if pad:
        alloc.alloc(pad - 1) if pad > 1 else None
        first = alloc.alloc(1)
        pad2 = (-first) % 1024
        if pad2:
            alloc.alloc(pad2 - 1) if pad2 > 1 else None
            first = alloc.alloc(1)
    # at this point `first` is aligned; claim the remaining 1023
    alloc.alloc(1023)
    return first


class TestLargePageMapping:
    def test_translate_through_large_pde(self, setup):
        mem, alloc, builder = setup
        first = _aligned_frames(alloc)
        builder.map_large_page(0x8040_0000, first)
        tr = AddressTranslator(mem, builder.cr3)
        assert tr.translate(0x8040_0000) == first * PAGE_SIZE
        # an offset deep inside the 4 MiB page
        assert tr.translate(0x8040_0000 + 0x123456) == \
            first * PAGE_SIZE + 0x123456

    def test_unaligned_va_rejected(self, setup):
        _, alloc, builder = setup
        with pytest.raises(ValueError, match="4 MiB aligned"):
            builder.map_large_page(0x8040_1000, 1024)

    def test_unaligned_frame_rejected(self, setup):
        _, _, builder = setup
        with pytest.raises(ValueError, match="aligned frame"):
            builder.map_large_page(0x8040_0000, 3)

    def test_io_roundtrip_across_4k_boundaries(self, setup):
        mem, alloc, builder = setup
        first = _aligned_frames(alloc)
        builder.map_large_page(0x8040_0000, first)
        tr = AddressTranslator(mem, builder.cr3)
        data = bytes(range(256)) * 64            # 16 KiB
        tr.write_virtual(0x8040_0FF0, data)
        assert tr.read_virtual(0x8040_0FF0, len(data)) == data

    def test_next_pde_still_faults(self, setup):
        mem, alloc, builder = setup
        first = _aligned_frames(alloc)
        builder.map_large_page(0x8040_0000, first)
        tr = AddressTranslator(mem, builder.cr3)
        with pytest.raises(PageFault):
            tr.translate(0x8040_0000 + LARGE_PAGE_SIZE)


class TestVMILargePages:
    def test_vmi_reads_through_large_page(self, catalog):
        hv = Hypervisor()
        domain = hv.create_guest("Dom1", catalog, seed=1)
        kernel = domain.kernel
        # Map a large page in the guest and stash a marker inside it.
        alloc = kernel.aspace.frame_allocator
        first = _aligned_frames(alloc)
        kernel.aspace.page_tables.map_large_page(0x9000_0000, first)
        kernel.memory.write(first * PAGE_SIZE + 0x5678, b"BIGPAGE!")

        profile = OSProfile.from_guest(kernel)
        vmi = VMIInstance(hv, "Dom1", profile)
        assert vmi.read_va(0x9000_0000 + 0x5678, 8) == b"BIGPAGE!"

    def test_carver_sweeps_large_pages(self, catalog):
        """A module image placed inside a large-page region is carved."""
        from repro.core.carver import ModuleCarver
        from repro.mem.address_space import DRIVER_AREA_END
        from repro.pe import map_file_to_memory

        hv = Hypervisor()
        domain = hv.create_guest("Dom1", catalog, seed=1)
        kernel = domain.kernel
        alloc = kernel.aspace.frame_allocator
        first = _aligned_frames(alloc)
        # place the region just past the regular driver arena
        big_va = (DRIVER_AREA_END + (1 << 22) - 1) & ~((1 << 22) - 1)
        kernel.aspace.page_tables.map_large_page(big_va, first)
        image = bytes(map_file_to_memory(catalog["dummy.sys"].file_bytes))
        kernel.memory.write(first * PAGE_SIZE, image)

        profile = OSProfile.from_guest(kernel)
        vmi = VMIInstance(hv, "Dom1", profile)
        carver = ModuleCarver(vmi, arena=(big_va, big_va + (1 << 22)))
        carved = carver.carve()
        assert len(carved) == 1
        assert carved[0].base == big_va
        assert carved[0].image == image
