"""Unit tests for the named-region map."""

import pytest

from repro.mem.regions import Region, RegionMap


class TestRegion:
    def test_contains(self):
        r = Region("r", 0x1000, 0x100)
        assert r.contains(0x1000) and r.contains(0x10FF)
        assert not r.contains(0x1100) and not r.contains(0xFFF)

    def test_end(self):
        assert Region("r", 0x1000, 0x100).end == 0x1100


class TestRegionMap:
    def test_add_and_find(self):
        m = RegionMap()
        m.add("a", 0x1000, 0x100)
        m.add("b", 0x2000, 0x100)
        assert m.find(0x1080).name == "a"
        assert m.find(0x2000).name == "b"
        assert m.find(0x3000) is None

    def test_by_name(self):
        m = RegionMap()
        m.add("a", 0, 16)
        assert m.by_name("a").base == 0
        with pytest.raises(KeyError):
            m.by_name("zzz")

    def test_overlap_rejected(self):
        m = RegionMap()
        m.add("a", 0x1000, 0x100)
        with pytest.raises(ValueError, match="overlaps"):
            m.add("b", 0x10FF, 0x10)

    def test_adjacent_allowed(self):
        m = RegionMap()
        m.add("a", 0x1000, 0x100)
        m.add("b", 0x1100, 0x100)    # exactly adjacent
        assert len(m) == 2

    def test_iteration_order(self):
        m = RegionMap()
        m.add("x", 0x2000, 1)
        m.add("y", 0x1000, 1)
        assert [r.name for r in m] == ["x", "y"]
