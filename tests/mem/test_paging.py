"""Unit + property tests for x86 two-level paging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageFault
from repro.mem.paging import AddressTranslator, PageTableBuilder
from repro.mem.physical import PAGE_SIZE, FrameAllocator, PhysicalMemory


@pytest.fixture
def setup():
    mem = PhysicalMemory(1024 * PAGE_SIZE)
    alloc = FrameAllocator(mem, reserve_low=4)
    builder = PageTableBuilder(mem, alloc)
    return mem, alloc, builder


class TestMapping:
    def test_translate_mapped_page(self, setup):
        mem, alloc, builder = setup
        frame = alloc.alloc()
        builder.map_page(0x8000_0000, frame)
        tr = AddressTranslator(mem, builder.cr3)
        assert tr.translate(0x8000_0000) == frame * PAGE_SIZE
        assert tr.translate(0x8000_0ABC) == frame * PAGE_SIZE + 0xABC

    def test_unmapped_va_faults(self, setup):
        mem, _, builder = setup
        tr = AddressTranslator(mem, builder.cr3)
        with pytest.raises(PageFault) as exc:
            tr.translate(0x9000_0000)
        assert exc.value.address == 0x9000_0000

    def test_unmapped_pte_in_mapped_pde_faults(self, setup):
        mem, alloc, builder = setup
        builder.map_page(0x8000_0000, alloc.alloc())
        tr = AddressTranslator(mem, builder.cr3)
        with pytest.raises(PageFault):
            tr.translate(0x8000_1000)   # same PDE, different PTE

    def test_unaligned_map_rejected(self, setup):
        _, alloc, builder = setup
        with pytest.raises(ValueError):
            builder.map_page(0x8000_0001, alloc.alloc())

    def test_map_range_returns_frames(self, setup):
        mem, _, builder = setup
        frames = builder.map_range(0x8010_0000, 5)
        assert len(frames) == 5
        tr = AddressTranslator(mem, builder.cr3)
        for i, frame in enumerate(frames):
            assert tr.translate(0x8010_0000 + i * PAGE_SIZE) == \
                frame * PAGE_SIZE

    def test_unmap_page(self, setup):
        mem, alloc, builder = setup
        builder.map_page(0x8000_0000, alloc.alloc())
        builder.unmap_page(0x8000_0000)
        tr = AddressTranslator(mem, builder.cr3)
        with pytest.raises(PageFault):
            tr.translate(0x8000_0000)

    def test_unmap_unmapped_is_noop(self, setup):
        _, _, builder = setup
        builder.unmap_page(0xD000_0000)

    def test_cross_pde_boundary(self, setup):
        # 0x8000_0000 + 4MiB crosses into the next page directory entry.
        mem, _, builder = setup
        builder.map_range(0x8040_0000 - PAGE_SIZE, 2)
        tr = AddressTranslator(mem, builder.cr3)
        tr.translate(0x8040_0000 - PAGE_SIZE)
        tr.translate(0x8040_0000)

    def test_non_canonical_va_faults(self, setup):
        mem, _, builder = setup
        tr = AddressTranslator(mem, builder.cr3)
        with pytest.raises(PageFault):
            tr.translate(1 << 32)


class TestVirtualIO:
    def test_write_read_roundtrip(self, setup):
        mem, _, builder = setup
        builder.map_range(0x8000_0000, 3)
        tr = AddressTranslator(mem, builder.cr3)
        data = bytes(range(256)) * 40           # crosses pages
        tr.write_virtual(0x8000_0100, data)
        assert tr.read_virtual(0x8000_0100, len(data)) == data

    def test_virtual_pages_need_not_be_physically_contiguous(self, setup):
        mem, alloc, builder = setup
        f1, f2 = alloc.alloc(), None
        alloc.alloc(7)                           # gap
        f2 = alloc.alloc()
        builder.map_page(0x8000_0000, f1)
        builder.map_page(0x8000_1000, f2)
        tr = AddressTranslator(mem, builder.cr3)
        tr.write_virtual(0x8000_0FF0, b"Z" * 32)
        assert tr.read_virtual(0x8000_0FF0, 32) == b"Z" * 32
        # confirm the spill really landed in f2
        assert mem.read(f2 * PAGE_SIZE, 16) == b"Z" * 16

    def test_walk_counter(self, setup):
        mem, _, builder = setup
        builder.map_range(0x8000_0000, 2)
        tr = AddressTranslator(mem, builder.cr3)
        tr.read_virtual(0x8000_0000, 2 * PAGE_SIZE)
        assert tr.walks == 2

    @given(st.integers(min_value=0, max_value=0x3FF),
           st.integers(min_value=0, max_value=0xFFF))
    @settings(max_examples=40, deadline=None)
    def test_translation_offset_property(self, pte_i, offset):
        """PA offset always equals VA offset within the page."""
        mem = PhysicalMemory(2048 * PAGE_SIZE)
        alloc = FrameAllocator(mem, reserve_low=4)
        builder = PageTableBuilder(mem, alloc)
        va = 0x8000_0000 | (pte_i << 12)
        frame = alloc.alloc()
        builder.map_page(va, frame)
        tr = AddressTranslator(mem, builder.cr3)
        assert tr.translate(va + offset) == frame * PAGE_SIZE + offset


class TestPageTableBytes:
    def test_tables_live_in_guest_memory(self, setup):
        """An independent translator, given only (memory, cr3) bytes,
        agrees with the builder — i.e. no hidden Python-side state."""
        mem, alloc, builder = setup
        frames = builder.map_range(0x8123_4000, 4)
        fresh = AddressTranslator(mem, builder.cr3)
        for i, frame in enumerate(frames):
            assert fresh.translate(0x8123_4000 + i * PAGE_SIZE) == \
                frame * PAGE_SIZE
