"""Unit tests for sparse physical memory and the frame allocator."""

import pytest

from repro.errors import PhysicalAddressError
from repro.mem.physical import PAGE_SIZE, FrameAllocator, PhysicalMemory


@pytest.fixture
def mem():
    return PhysicalMemory(64 * PAGE_SIZE)


class TestReadWrite:
    def test_untouched_memory_reads_zero(self, mem):
        assert mem.read(0x1234, 16) == bytes(16)

    def test_write_read_roundtrip(self, mem):
        mem.write(0x800, b"hello world")
        assert mem.read(0x800, 11) == b"hello world"

    def test_cross_page_write(self, mem):
        data = bytes(range(200)) * 30          # spans > 1 page
        mem.write(PAGE_SIZE - 100, data)
        assert mem.read(PAGE_SIZE - 100, len(data)) == data

    def test_write_spanning_three_pages(self, mem):
        data = b"\xAB" * (2 * PAGE_SIZE + 200)
        mem.write(PAGE_SIZE - 50, data)
        assert mem.read(PAGE_SIZE - 50, len(data)) == data

    def test_partial_overwrite(self, mem):
        mem.write(0, b"AAAA")
        mem.write(1, b"BB")
        assert mem.read(0, 4) == b"ABBA"

    def test_zero_length_read(self, mem):
        assert mem.read(0, 0) == b""

    def test_read_beyond_end_rejected(self, mem):
        with pytest.raises(PhysicalAddressError):
            mem.read(64 * PAGE_SIZE - 4, 8)

    def test_write_beyond_end_rejected(self, mem):
        with pytest.raises(PhysicalAddressError):
            mem.write(64 * PAGE_SIZE - 2, b"1234")

    def test_negative_address_rejected(self, mem):
        with pytest.raises(PhysicalAddressError):
            mem.read(-4, 4)


class TestFrames:
    def test_read_frame_untouched(self, mem):
        assert mem.read_frame(3) == bytes(PAGE_SIZE)

    def test_read_frame_after_write(self, mem):
        mem.write(3 * PAGE_SIZE + 7, b"xyz")
        page = mem.read_frame(3)
        assert page[7:10] == b"xyz"

    def test_frame_view_is_writable(self, mem):
        view = mem.frame_view(5)
        view[0] = 0x42
        assert mem.read(5 * PAGE_SIZE, 1) == b"\x42"

    def test_out_of_range_frame_rejected(self, mem):
        with pytest.raises(PhysicalAddressError):
            mem.read_frame(64)

    def test_sparseness(self, mem):
        assert mem.frames_touched == 0
        mem.write(0, b"x")
        mem.write(10 * PAGE_SIZE, b"y")
        assert mem.frames_touched == 2
        assert mem.resident_bytes() == 2 * PAGE_SIZE

    def test_reads_do_not_materialise_frames(self, mem):
        mem.read(0, PAGE_SIZE)
        mem.read_frame(7)
        assert mem.frames_touched == 0


class TestConstruction:
    def test_unaligned_size_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(PAGE_SIZE + 1)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(0)


class TestFrameAllocator:
    def test_respects_reservation(self, mem):
        alloc = FrameAllocator(mem, reserve_low=16)
        assert alloc.alloc() == 16

    def test_sequential_contiguous(self, mem):
        alloc = FrameAllocator(mem, reserve_low=0)
        first = alloc.alloc(3)
        second = alloc.alloc(1)
        assert second == first + 3

    def test_exhaustion(self, mem):
        alloc = FrameAllocator(mem, reserve_low=0)
        alloc.alloc(64)
        with pytest.raises(PhysicalAddressError):
            alloc.alloc(1)

    def test_invalid_count_rejected(self, mem):
        alloc = FrameAllocator(mem)
        with pytest.raises(ValueError):
            alloc.alloc(0)
