"""Differential harness: ``translate_range`` vs the scalar walker.

The vectorised batch walker (:func:`repro.mem.paging.walk_batch`, via
:meth:`AddressTranslator.translate_range`) must agree with the scalar
:meth:`AddressTranslator.translate` on *every* page of *every* layout:
same frames, same present/absent verdicts, byte-identical fault text,
and the same ``walks`` accounting. Layouts are generated from seeds so
a failure names the seed that reproduces it.
"""

import random

import numpy as np
import pytest

from repro.errors import PageFault
from repro.mem.paging import (FAULT_NONE, AddressTranslator,
                              PageTableBuilder, fault_reason)
from repro.mem.physical import PAGE_SIZE, FrameAllocator, PhysicalMemory

LARGE_PAGE_FRAMES = 1024        # 4 MiB / 4 KiB
LAYOUT_SEEDS = list(range(8))


def covered_pages(vaddr: int, length: int) -> int:
    return ((vaddr + length - 1) >> 12) - (vaddr >> 12) + 1


def alloc_aligned_large(alloc: FrameAllocator) -> int:
    """Allocate 1024 contiguous frames on a 4 MiB physical boundary."""
    probe = alloc.alloc()                   # where the cursor is now
    pad = -(probe + 1) % LARGE_PAGE_FRAMES
    if pad:
        alloc.alloc(pad)
    return alloc.alloc(LARGE_PAGE_FRAMES)


def build_layout(seed: int):
    """A randomised region: 4 KiB pages with holes, plus a 4 MiB page.

    Returns ``(memory, cr3, base, n_pages)`` where the ``n_pages``
    small-page region at ``base`` runs right up to the 4 MiB-aligned
    VA ``base + n_pages * PAGE_SIZE`` that the large page occupies, so
    ranges can straddle the small/large boundary.
    """
    rng = random.Random(seed)
    mem = PhysicalMemory(4096 * PAGE_SIZE)
    alloc = FrameAllocator(mem, reserve_low=4)
    builder = PageTableBuilder(mem, alloc)

    n_pages = 32
    large_va = 0x8040_0000
    base = large_va - n_pages * PAGE_SIZE
    for i in range(n_pages):
        if rng.random() < 0.7:              # ~30% holes
            frame = alloc.alloc()
            builder.map_page(base + i * PAGE_SIZE, frame)
            mem.write(frame * PAGE_SIZE, rng.randbytes(64))
    first = alloc_aligned_large(alloc)
    builder.map_large_page(large_va, first)
    mem.write(first * PAGE_SIZE, rng.randbytes(64))
    return mem, builder.cr3, base, n_pages


def scalar_reference(tr: AddressTranslator, vaddr: int, length: int, *,
                     stop_on_fault: bool):
    """What a per-page loop of ``translate`` observes over the range."""
    outcomes = []
    first_page = vaddr & ~(PAGE_SIZE - 1)
    for i in range(covered_pages(vaddr, length)):
        va = first_page + i * PAGE_SIZE
        try:
            outcomes.append(("ok", tr.translate(va) >> 12))
        except PageFault as exc:
            outcomes.append(("fault", str(exc)))
            if stop_on_fault:
                break
    return outcomes


def assert_range_matches_scalar(mem, cr3, vaddr, length, *,
                                stop_on_fault=True):
    batch_tr = AddressTranslator(mem, cr3)
    scalar_tr = AddressTranslator(mem, cr3)
    frames, present, faults = batch_tr.translate_range(
        vaddr, length, stop_on_fault=stop_on_fault)
    outcomes = scalar_reference(scalar_tr, vaddr, length,
                                stop_on_fault=stop_on_fault)

    n_pages = covered_pages(vaddr, length)
    assert len(frames) == len(present) == len(faults) == n_pages
    first_page = vaddr & ~(PAGE_SIZE - 1)
    for i, outcome in enumerate(outcomes):
        page_va = first_page + i * PAGE_SIZE
        if outcome[0] == "ok":
            assert present[i], f"page {i} ({page_va:#x}): batch says hole"
            assert faults[i] == FAULT_NONE
            assert int(frames[i]) == outcome[1], f"page {i} frame mismatch"
        else:
            assert not present[i], f"page {i} ({page_va:#x}): batch mapped"
            assert fault_reason(int(faults[i]), page_va) == outcome[1]
    # walks advance exactly as the equivalent scalar loop's would
    assert batch_tr.walks == scalar_tr.walks
    return frames, present, faults


class TestDifferential:
    @pytest.mark.parametrize("seed", LAYOUT_SEEDS)
    def test_full_region_with_holes(self, seed):
        mem, cr3, base, n_pages = build_layout(seed)
        assert_range_matches_scalar(mem, cr3, base, n_pages * PAGE_SIZE,
                                    stop_on_fault=False)

    @pytest.mark.parametrize("seed", LAYOUT_SEEDS)
    def test_stop_on_first_hole(self, seed):
        mem, cr3, base, n_pages = build_layout(seed)
        assert_range_matches_scalar(mem, cr3, base, n_pages * PAGE_SIZE,
                                    stop_on_fault=True)

    @pytest.mark.parametrize("seed", LAYOUT_SEEDS)
    def test_random_subranges_unaligned(self, seed):
        mem, cr3, base, n_pages = build_layout(seed)
        rng = random.Random(seed * 7919 + 1)
        span = n_pages * PAGE_SIZE
        for _ in range(16):
            start = base + rng.randrange(span - 1)
            length = rng.randrange(1, span - (start - base) + 1)
            assert_range_matches_scalar(mem, cr3, start, length,
                                        stop_on_fault=rng.random() < 0.5)

    @pytest.mark.parametrize("seed", LAYOUT_SEEDS)
    def test_straddles_small_large_boundary(self, seed):
        """Ranges crossing from the 4 KiB region into the 4 MiB page."""
        mem, cr3, base, n_pages = build_layout(seed)
        boundary = base + n_pages * PAGE_SIZE
        assert_range_matches_scalar(mem, cr3, boundary - 3 * PAGE_SIZE - 5,
                                    8 * PAGE_SIZE, stop_on_fault=False)

    def test_inside_large_page(self):
        mem, cr3, base, n_pages = build_layout(0)
        large_va = base + n_pages * PAGE_SIZE
        frames, present, faults = assert_range_matches_scalar(
            mem, cr3, large_va + 5 * PAGE_SIZE + 0x321, 6 * PAGE_SIZE)
        assert present.all()
        # consecutive VAs inside a PSE mapping back consecutive frames
        assert (np.diff(frames) == 1).all()

    def test_pde_hole_beyond_any_table(self):
        """A range in VA space with no PDE at all: every page FAULT_PDE."""
        mem, cr3, _, _ = build_layout(1)
        assert_range_matches_scalar(mem, cr3, 0x2000_0000, 5 * PAGE_SIZE,
                                    stop_on_fault=False)


class TestEdges:
    def test_zero_length(self):
        mem, cr3, base, _ = build_layout(2)
        frames, present, faults = AddressTranslator(mem, cr3) \
            .translate_range(base, 0)
        assert frames.size == present.size == faults.size == 0

    def test_zero_length_counts_no_walks(self):
        mem, cr3, base, _ = build_layout(2)
        tr = AddressTranslator(mem, cr3)
        tr.translate_range(base, 0)
        assert tr.walks == 0

    def test_negative_length_rejected(self):
        mem, cr3, base, _ = build_layout(2)
        with pytest.raises(ValueError):
            AddressTranslator(mem, cr3).translate_range(base, -1)

    def test_non_canonical_range_faults(self):
        mem, cr3, _, _ = build_layout(2)
        with pytest.raises(PageFault):
            AddressTranslator(mem, cr3).translate_range(
                0xFFFF_F000, 2 * PAGE_SIZE)

    def test_single_byte_range(self):
        mem, cr3, base, n_pages = build_layout(3)
        large_va = base + n_pages * PAGE_SIZE
        frames, present, _ = assert_range_matches_scalar(
            mem, cr3, large_va + 0x7FF, 1)
        assert frames.size == 1 and present.all()


class TestReadVirtualStraddle:
    """Regression for the allocation-free ``read_virtual`` rewrite.

    ``read_virtual`` now fills a single output buffer through
    ``memoryview`` slices (one ``read_into`` per covered page) instead
    of concatenating per-page ``bytes``; a slicing bug would misplace
    exactly the bytes of straddling reads.
    """

    @pytest.fixture
    def region(self):
        mem = PhysicalMemory(512 * PAGE_SIZE)
        alloc = FrameAllocator(mem, reserve_low=4)
        builder = PageTableBuilder(mem, alloc)
        base = 0x8000_0000
        # deliberately non-contiguous frames so physical order differs
        # from virtual order
        f1, f3 = alloc.alloc(), alloc.alloc()
        alloc.alloc(5)
        f2 = alloc.alloc()
        for i, frame in enumerate((f1, f2, f3)):
            builder.map_page(base + i * PAGE_SIZE, frame)
        tr = AddressTranslator(mem, builder.cr3)
        data = bytes(random.Random(99).randbytes(3 * PAGE_SIZE))
        tr.write_virtual(base, data)
        return tr, base, data

    def test_aligned_full_read(self, region):
        tr, base, data = region
        assert tr.read_virtual(base, 3 * PAGE_SIZE) == data

    @pytest.mark.parametrize("start,length", [
        (0x1, 2),                                   # within one page
        (PAGE_SIZE - 1, 2),                         # 1 byte each side
        (0x123, 2 * PAGE_SIZE),                     # unaligned, 3 pages
        (PAGE_SIZE - 7, PAGE_SIZE + 14),            # straddle both ends
        (0, 3 * PAGE_SIZE - 1),                     # short tail
        (5, 0),                                     # empty
    ])
    def test_straddling_reads(self, region, start, length):
        tr, base, data = region
        assert tr.read_virtual(base + start, length) == \
            data[start:start + length]

    def test_untouched_frame_reads_zeros(self):
        mem = PhysicalMemory(64 * PAGE_SIZE)
        alloc = FrameAllocator(mem, reserve_low=4)
        builder = PageTableBuilder(mem, alloc)
        builder.map_page(0x8000_0000, alloc.alloc())
        tr = AddressTranslator(mem, builder.cr3)
        assert tr.read_virtual(0x8000_0100, 64) == bytes(64)
