"""Unit tests for the guest PE module loader."""

import struct

import pytest

from repro.errors import ModuleLoadError
from repro.mem.address_space import KernelAddressSpace
from repro.mem.physical import PAGE_SIZE, PhysicalMemory
from repro.guest.ldr import ListEntry
from repro.guest.loader import ModuleLoader
from repro.pe import build_driver, map_file_to_memory
from repro.pe.builder import ImportSpec


def _fresh_loader(seed=1):
    aspace = KernelAddressSpace(PhysicalMemory(4096 * PAGE_SIZE), seed=seed)
    head = aspace.alloc_fixed(0x1000, "globals")
    aspace.write(head, ListEntry(head, head).pack())
    return aspace, ModuleLoader(aspace, head)


@pytest.fixture
def standalone():
    """A driver with no imports, loadable on an empty kernel."""
    return build_driver("solo.sys", seed=3, n_functions=5, imports=())


class TestLoading:
    def test_load_returns_consistent_record(self, standalone):
        aspace, loader = _fresh_loader()
        mod = loader.load(standalone)
        assert mod.name == "solo.sys"
        assert mod.size_of_image == standalone.size_of_image
        assert mod.base % PAGE_SIZE == 0

    def test_image_written_to_guest_memory(self, standalone):
        aspace, loader = _fresh_loader()
        mod = loader.load(standalone)
        image = aspace.read(mod.base, mod.size_of_image)
        assert image[:2] == b"MZ"

    def test_relocations_applied(self, standalone):
        aspace, loader = _fresh_loader()
        mod = loader.load(standalone)
        image = aspace.read(mod.base, mod.size_of_image)
        delta = mod.base - standalone.image_base
        for rva in standalone.fixup_rvas:
            got = struct.unpack_from("<I", image, rva)[0]
            pristine = struct.unpack_from(
                "<I", map_file_to_memory(standalone.file_bytes), rva)[0]
            assert got == (pristine + delta) & 0xFFFFFFFF

    def test_non_fixup_bytes_untouched(self, standalone):
        aspace, loader = _fresh_loader()
        mod = loader.load(standalone)
        image = bytearray(aspace.read(mod.base, mod.size_of_image))
        pristine = map_file_to_memory(standalone.file_bytes)
        # zero out the fixup slots on both sides, then require equality
        for rva in standalone.fixup_rvas:
            image[rva:rva + 4] = b"\x00" * 4
            pristine[rva:rva + 4] = b"\x00" * 4
        # import resolution also writes the IAT slots
        for _dll, _sym, rva in standalone.iat_slots:
            image[rva:rva + 4] = b"\x00" * 4
            pristine[rva:rva + 4] = b"\x00" * 4
        assert bytes(image) == bytes(pristine)

    def test_entry_point_relocated(self, standalone):
        aspace, loader = _fresh_loader()
        mod = loader.load(standalone)
        assert mod.entry_point == mod.base + \
            standalone.optional_header.address_of_entry_point

    def test_ldr_entry_linked_and_readable(self, standalone):
        aspace, loader = _fresh_loader()
        mod = loader.load(standalone)
        head = ListEntry.unpack(aspace.read(loader.head_va, 8))
        assert head.flink == mod.ldr_entry_va

    def test_exports_registered(self, standalone):
        aspace, loader = _fresh_loader()
        mod = loader.load(standalone)
        assert ("solo.sys", "DriverEntry") in loader.export_table
        assert loader.export_table[("solo.sys", "DriverEntry")] == \
            mod.exports["DriverEntry"]

    def test_unload_unlinks_and_unregisters(self, standalone):
        aspace, loader = _fresh_loader()
        mod = loader.load(standalone)
        loader.unload(mod)
        head = ListEntry.unpack(aspace.read(loader.head_va, 8))
        assert head.flink == loader.head_va
        assert not any(k[0] == "solo.sys" for k in loader.export_table)


class TestImports:
    def test_import_resolution_against_exporter(self):
        aspace, loader = _fresh_loader()
        exporter = build_driver("exp.sys", seed=4, n_functions=3, imports=())
        consumer = build_driver(
            "use.sys", seed=5, n_functions=3,
            imports=(ImportSpec("exp.sys", ("DriverEntry", "fn_001")),))
        exp_mod = loader.load(exporter)
        use_mod = loader.load(consumer)
        image = aspace.read(use_mod.base, use_mod.size_of_image)
        for dll, sym, rva in consumer.iat_slots:
            got = struct.unpack_from("<I", image, rva)[0]
            assert got == exp_mod.exports[sym]

    def test_missing_exporter_fails(self):
        _, loader = _fresh_loader()
        consumer = build_driver(
            "use.sys", seed=5,
            imports=(ImportSpec("ghost.sys", ("Nope",)),))
        with pytest.raises(ModuleLoadError, match="exporter not loaded"):
            loader.load(consumer)

    def test_unknown_symbol_maps_deterministically(self):
        results = []
        for run in range(2):
            aspace, loader = _fresh_loader(seed=7)
            exporter = build_driver("exp.sys", seed=4, n_functions=3,
                                    imports=())
            consumer = build_driver(
                "use.sys", seed=5,
                imports=(ImportSpec("exp.sys", ("NotARealExport",)),))
            loader.load(exporter)
            mod = loader.load(consumer)
            image = aspace.read(mod.base, mod.size_of_image)
            rva = consumer.iat_slots[0][2]
            results.append(struct.unpack_from("<I", image, rva)[0])
        assert results[0] == results[1]


class TestCrossVMBehaviour:
    def test_same_module_two_kernels_differs_only_at_reloc_sites(self):
        """The precondition for Algorithm 2, from the loader's side."""
        bp = build_driver("pair.sys", seed=8, imports=())
        images, bases = [], []
        for seed in (1, 2):
            aspace, loader = _fresh_loader(seed=seed)
            mod = loader.load(bp)
            images.append(aspace.read(mod.base, mod.size_of_image))
            bases.append(mod.base)
        assert bases[0] != bases[1]
        fixups = set(bp.fixup_rvas)
        iat = {rva for _d, _s, rva in bp.iat_slots}
        allowed = set()
        for site in fixups | iat:
            allowed.update(range(site, site + 4))
        diffs = {i for i, (a, b) in enumerate(zip(*images)) if a != b}
        assert diffs, "different bases must produce differing bytes"
        assert diffs <= allowed, sorted(diffs - allowed)[:8]
