"""Tests for the guest filesystem and disk-load paths."""

import pytest

from repro.attacks import OpcodeReplacementAttack
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.core.baselines import SVVChecker
from repro.guest import GuestKernel
from repro.guest.filesystem import DRIVER_DIR, FileNotFound, GuestFilesystem


class TestFilesystem:
    def test_write_read_roundtrip(self):
        fs = GuestFilesystem()
        fs.write("system32/drivers/x.sys", b"bytes")
        assert fs.read("system32/drivers/x.sys") == b"bytes"

    def test_case_insensitive_paths(self):
        fs = GuestFilesystem()
        fs.write("System32/Drivers/HAL.DLL", b"x")
        assert fs.read("system32/drivers/hal.dll") == b"x"
        assert fs.exists("SYSTEM32/DRIVERS/hal.dll")

    def test_missing_file(self):
        with pytest.raises(FileNotFound):
            GuestFilesystem().read("nope")
        with pytest.raises(FileNotFound):
            GuestFilesystem().delete("nope")

    def test_listdir_prefix(self):
        fs = GuestFilesystem()
        fs.write(f"{DRIVER_DIR}/a.sys", b"")
        fs.write(f"{DRIVER_DIR}/b.sys", b"")
        fs.write("windows/notepad.exe", b"")
        assert fs.listdir(DRIVER_DIR + "/") == \
            [f"{DRIVER_DIR}/a.sys", f"{DRIVER_DIR}/b.sys"]

    def test_driver_helpers(self):
        fs = GuestFilesystem()
        fs.install_driver("hal.dll", b"pe!")
        assert fs.read_driver("hal.dll") == b"pe!"
        assert fs.drivers() == ["hal.dll"]

    def test_write_counter(self):
        fs = GuestFilesystem()
        fs.write("a", b"1")
        fs.write("a", b"2")
        assert fs.writes == 2


class TestBootFromDisk:
    def test_boot_installs_catalog_on_disk(self, catalog):
        kernel = GuestKernel("fsvm", seed=1)
        kernel.boot(catalog)
        assert set(kernel.fs.drivers()) == {n.lower() for n in catalog}
        assert kernel.fs.read_driver("hal.dll") == \
            catalog["hal.dll"].file_bytes

    def test_reload_picks_up_disk_infection(self, catalog):
        """The paper's procedure as a live sequence: infect the disk
        file, 'restart', and the infected image is in memory."""
        kernel = GuestKernel("victim", seed=2)
        kernel.boot(catalog)
        clean_image = kernel.read_module_image("hal.dll")

        infected = OpcodeReplacementAttack().apply(catalog["hal.dll"])
        kernel.fs.install_driver("hal.dll", infected.infected.file_bytes)
        assert kernel.read_module_image("hal.dll") == clean_image  # not yet

        kernel.reload_module("hal.dll")
        assert kernel.read_module_image("hal.dll") != clean_image

    def test_reload_keeps_list_consistent(self, catalog):
        kernel = GuestKernel("r", seed=3)
        kernel.boot(catalog)
        before = kernel.list_entry_count()
        kernel.reload_module("dummy.sys")
        assert kernel.list_entry_count() == before


class TestDiskInfectionEndToEnd:
    def test_infect_disk_reload_detect(self, catalog):
        """Full paper loop without rebuilding the testbed: write the
        infected file to one clone's disk, reload, cross-check."""
        tb = build_testbed(4, seed=42)
        mc = ModChecker(tb.hypervisor, tb.profile)
        assert mc.check_pool("hal.dll").report.all_clean

        infected = OpcodeReplacementAttack().apply(tb.catalog["hal.dll"])
        kernel = tb.hypervisor.domain("Dom2").kernel
        kernel.fs.install_driver("hal.dll", infected.infected.file_bytes)
        kernel.reload_module("hal.dll")

        report = mc.check_pool("hal.dll").report
        assert report.flagged() == ["Dom2"]
        assert report.mismatched_regions("Dom2") == (".text",)

    def test_svv_reads_the_guests_own_disk(self, catalog):
        """With a real per-guest disk, SVV's blind spot needs no
        hand-built 'infected catalog': it reads the victim's fs."""
        tb = build_testbed(3, seed=42)
        kernel = tb.hypervisor.domain("Dom2").kernel
        infected = OpcodeReplacementAttack().apply(tb.catalog["hal.dll"])
        kernel.fs.install_driver("hal.dll", infected.infected.file_bytes)
        kernel.reload_module("hal.dll")

        mc = ModChecker(tb.hypervisor, tb.profile)
        disk = {name: kernel.fs.read_driver(name)
                for name in tb.catalog}
        svv = SVVChecker(mc.vmi_for("Dom2"), disk)
        assert svv.check_module("hal.dll").clean        # the blind spot
