"""Unit tests for UNICODE_STRING encoding."""

from hypothesis import given
from hypothesis import strategies as st

from repro.guest.unicode_string import UnicodeString


class TestUnicodeString:
    def test_header_roundtrip(self):
        us = UnicodeString(10, 12, 0x80001234)
        assert UnicodeString.unpack(us.pack()) == us

    def test_for_text_lengths(self):
        us, payload = UnicodeString.for_text("hal.dll", 0x1000)
        assert us.length == 14                   # 7 chars * 2 bytes
        assert us.maximum_length == 16           # + NUL
        assert us.buffer == 0x1000
        assert len(payload) == 16

    def test_decode_roundtrip(self):
        us, payload = UnicodeString.for_text("http.sys", 0)
        assert us.decode(payload) == "http.sys"

    def test_terminator_not_counted(self):
        us, payload = UnicodeString.for_text("x", 0)
        assert payload[us.length:] == b"\x00\x00"

    def test_empty_string(self):
        us, payload = UnicodeString.for_text("", 0)
        assert us.length == 0
        assert us.decode(payload) == ""

    @given(st.text(alphabet=st.characters(min_codepoint=32,
                                          max_codepoint=0xD7FF),
                   max_size=64))
    def test_roundtrip_property(self, text):
        us, payload = UnicodeString.for_text(text, 0x2000)
        assert us.decode(payload) == text
        assert UnicodeString.unpack(us.pack()).decode(payload) == text
