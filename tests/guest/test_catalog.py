"""Unit tests for the driver catalog."""

from repro.guest.catalog import STANDARD_CATALOG, DriverSpec, build_catalog


class TestCatalog:
    def test_contains_papers_modules(self, catalog):
        for name in ("hal.dll", "http.sys", "dummy.sys", "ntoskrnl.exe"):
            assert name in catalog

    def test_load_order_exporters_first(self):
        names = [s.name for s in STANDARD_CATALOG]
        assert names.index("ntoskrnl.exe") < names.index("hal.dll")
        assert names.index("hal.dll") < names.index("ndis.sys")

    def test_deterministic(self):
        a = build_catalog(seed=5)
        b = build_catalog(seed=5)
        assert all(a[k].file_bytes == b[k].file_bytes for k in a)

    def test_seed_changes_bytes(self):
        a = build_catalog(seed=5)
        b = build_catalog(seed=6)
        assert any(a[k].file_bytes != b[k].file_bytes for k in a)

    def test_adding_driver_does_not_perturb_others(self):
        base = build_catalog(seed=5)
        extended = build_catalog(
            seed=5, specs=STANDARD_CATALOG + (
                DriverSpec("extra.sys", 4, 80, 0x200, imports=()),))
        for name in base:
            assert base[name].file_bytes == extended[name].file_bytes
        assert "extra.sys" in extended

    def test_sizes_vary_with_spec(self, catalog):
        assert len(catalog["ntoskrnl.exe"].file_bytes) > \
            len(catalog["dummy.sys"].file_bytes)
