"""Unit tests for the guest kernel simulator."""

import pytest

from repro.errors import ModuleNotLoadedError
from repro.guest import GuestKernel
from repro.pe import PEImage


@pytest.fixture(scope="module")
def booted(catalog):
    kernel = GuestKernel("testvm", seed=11)
    kernel.boot(catalog)
    return kernel


class TestBoot:
    def test_boot_loads_catalog(self, booted, catalog):
        assert set(booted.modules) == set(catalog)
        assert booted.list_entry_count() == len(catalog)

    def test_double_boot_rejected(self, booted):
        with pytest.raises(RuntimeError, match="already booted"):
            booted.boot()

    def test_load_before_boot_rejected(self, catalog):
        kernel = GuestKernel("cold", seed=1)
        with pytest.raises(RuntimeError, match="boot"):
            kernel.load_module(next(iter(catalog.values())))

    def test_symbols_exported(self, booted):
        assert "PsLoadedModuleList" in booted.symbols

    def test_modules_have_distinct_bases(self, booted):
        bases = [m.base for m in booted.modules.values()]
        assert len(bases) == len(set(bases))


class TestModuleAccess:
    def test_module_lookup(self, booted):
        mod = booted.module("hal.dll")
        assert mod.name == "hal.dll"

    def test_missing_module_raises(self, booted):
        with pytest.raises(ModuleNotLoadedError):
            booted.module("ghost.sys")

    def test_read_module_image_parses(self, booted):
        image = booted.read_module_image("http.sys")
        pe = PEImage(image)
        assert ".text" in [s.name for s in pe.sections]

    def test_unload(self, catalog):
        kernel = GuestKernel("unloader", seed=3)
        kernel.boot(catalog)
        before = kernel.list_entry_count()
        kernel.unload_module("dummy.sys")
        assert kernel.list_entry_count() == before - 1
        with pytest.raises(ModuleNotLoadedError):
            kernel.unload_module("dummy.sys")


class TestCloneSemantics:
    def test_clones_share_symbols(self, catalog):
        a = GuestKernel("a", seed=1)
        b = GuestKernel("b", seed=2)
        a.boot(catalog)
        b.boot(catalog)
        assert a.symbols == b.symbols

    def test_clones_differ_in_module_bases(self, catalog):
        a = GuestKernel("a", seed=1)
        b = GuestKernel("b", seed=2)
        a.boot(catalog)
        b.boot(catalog)
        bases_a = {n: m.base for n, m in a.modules.items()}
        bases_b = {n: m.base for n, m in b.modules.items()}
        assert bases_a != bases_b

    def test_memory_footprint_is_sparse(self, booted):
        # 10 modules in a 64 MiB guest should touch well under 4 MiB.
        assert booted.memory.resident_bytes() < 4 * 1024 * 1024
