"""Unit tests for LDR_DATA_TABLE_ENTRY and list linking."""


from repro.guest.ldr import (LDR_ENTRY_SIZE, LIST_ENTRY_SIZE, OFF_BASEDLLNAME,
                             OFF_DLLBASE, OFF_SIZEOFIMAGE,
                             LdrDataTableEntry, ListEntry, link_tail, unlink)
from repro.guest.unicode_string import UnicodeString


class _FakeMemory:
    """Flat byte store exposing read/write like an address space."""

    def __init__(self, size=0x10000):
        self.buf = bytearray(size)

    def write(self, va, data):
        self.buf[va:va + len(data)] = data

    def read(self, va, n):
        return bytes(self.buf[va:va + n])


class TestStructures:
    def _entry(self):
        return LdrDataTableEntry(
            in_load_order=ListEntry(0x100, 0x200),
            in_memory_order=ListEntry(0, 0),
            in_init_order=ListEntry(0, 0),
            dll_base=0xF7010000, entry_point=0xF7011234,
            size_of_image=0x8000,
            full_dll_name=UnicodeString(10, 12, 0x300),
            base_dll_name=UnicodeString(6, 8, 0x400),
            flags=0x4, load_count=2)

    def test_roundtrip(self):
        entry = self._entry()
        assert LdrDataTableEntry.unpack(entry.pack()) == entry

    def test_size(self):
        assert len(self._entry().pack()) == LDR_ENTRY_SIZE

    def test_field_offsets(self):
        raw = self._entry().pack()
        assert int.from_bytes(raw[OFF_DLLBASE:OFF_DLLBASE + 4],
                              "little") == 0xF7010000
        assert int.from_bytes(raw[OFF_SIZEOFIMAGE:OFF_SIZEOFIMAGE + 4],
                              "little") == 0x8000
        us = UnicodeString.unpack(raw[OFF_BASEDLLNAME:OFF_BASEDLLNAME + 8])
        assert us.buffer == 0x400

    def test_list_entry_roundtrip(self):
        le = ListEntry(0xAABB, 0xCCDD)
        assert ListEntry.unpack(le.pack()) == le
        assert len(le.pack()) == LIST_ENTRY_SIZE


class TestLinking:
    HEAD = 0x1000

    def _init_head(self, mem):
        mem.write(self.HEAD, ListEntry(self.HEAD, self.HEAD).pack())

    def _walk(self, mem, max_steps=32):
        out = []
        cursor = ListEntry.unpack(mem.read(self.HEAD, 8)).flink
        while cursor != self.HEAD:
            out.append(cursor)
            cursor = ListEntry.unpack(mem.read(cursor, 8)).flink
            assert len(out) <= max_steps
        return out

    def _walk_back(self, mem, max_steps=32):
        out = []
        cursor = ListEntry.unpack(mem.read(self.HEAD, 8)).blink
        while cursor != self.HEAD:
            out.append(cursor)
            cursor = ListEntry.unpack(mem.read(cursor, 8)).blink
            assert len(out) <= max_steps
        return out

    def test_insert_one(self):
        mem = _FakeMemory()
        self._init_head(mem)
        link_tail(mem.write, mem.read, self.HEAD, 0x2000)
        assert self._walk(mem) == [0x2000]
        assert self._walk_back(mem) == [0x2000]

    def test_insert_preserves_order(self):
        mem = _FakeMemory()
        self._init_head(mem)
        nodes = [0x2000, 0x3000, 0x4000]
        for n in nodes:
            link_tail(mem.write, mem.read, self.HEAD, n)
        assert self._walk(mem) == nodes
        assert self._walk_back(mem) == nodes[::-1]

    def test_unlink_middle(self):
        mem = _FakeMemory()
        self._init_head(mem)
        for n in (0x2000, 0x3000, 0x4000):
            link_tail(mem.write, mem.read, self.HEAD, n)
        unlink(mem.write, mem.read, 0x3000)
        assert self._walk(mem) == [0x2000, 0x4000]
        assert self._walk_back(mem) == [0x4000, 0x2000]

    def test_unlink_only_node_empties_list(self):
        mem = _FakeMemory()
        self._init_head(mem)
        link_tail(mem.write, mem.read, self.HEAD, 0x2000)
        unlink(mem.write, mem.read, 0x2000)
        assert self._walk(mem) == []
        head = ListEntry.unpack(mem.read(self.HEAD, 8))
        assert head.flink == head.blink == self.HEAD

    def test_flink_blink_invariant(self):
        """node.Flink.Blink == node for every node including head."""
        mem = _FakeMemory()
        self._init_head(mem)
        for n in (0x2000, 0x3000, 0x4000, 0x5000):
            link_tail(mem.write, mem.read, self.HEAD, n)
        cursor = self.HEAD
        for _ in range(5):
            entry = ListEntry.unpack(mem.read(cursor, 8))
            nxt = ListEntry.unpack(mem.read(entry.flink, 8))
            assert nxt.blink == cursor
            cursor = entry.flink
        assert cursor == self.HEAD
