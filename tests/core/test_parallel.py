"""Unit tests for the parallel-introspection extension."""

import pytest

from repro.cloud import build_testbed
from repro.core import ModChecker, ParallelModChecker, makespan


class TestMakespan:
    def test_empty(self):
        assert makespan([], 4) == 0.0

    def test_single_worker_sums(self):
        assert makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_enough_workers_takes_max(self):
        assert makespan([1.0, 2.0, 3.0], 3) == pytest.approx(3.0)

    def test_lpt_packing(self):
        # The classic LPT worst case: optimal is 6 (3+3 / 2+2+2) but the
        # greedy yields 7 — still within the 7/6 guarantee.
        assert makespan([3, 3, 2, 2, 2], 2) == pytest.approx(7.0)

    def test_lpt_within_guarantee(self):
        items = [3.0, 3.0, 2.0, 2.0, 2.0, 1.0, 1.0]
        got = makespan(items, 2)
        optimal_lower = max(max(items), sum(items) / 2)
        assert got <= (7 / 6) * optimal_lower + max(items)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            makespan([1.0], 0)

    def test_never_below_max_item(self):
        assert makespan([5.0, 0.1, 0.1], 8) == pytest.approx(5.0)


class TestParallelChecker:
    def test_same_verdict_as_sequential(self, clean_testbed_session):
        tb = clean_testbed_session
        seq = ModChecker(tb.hypervisor, tb.profile)
        par = ParallelModChecker(tb.hypervisor, tb.profile, threads=4)
        r_seq = seq.check_on_vm("http.sys", "Dom1").report
        r_par = par.check_on_vm("http.sys", "Dom1").report
        assert r_seq.clean == r_par.clean
        assert r_seq.matches == r_par.matches
        assert r_seq.comparisons == r_par.comparisons

    def test_parallel_faster_on_idle_host(self):
        tb = build_testbed(8, seed=42)
        seq = ModChecker(tb.hypervisor, tb.profile)
        par = ParallelModChecker(tb.hypervisor, tb.profile, threads=4)
        with tb.clock.span() as s:
            seq.check_on_vm("http.sys", "Dom1")
        with tb.clock.span() as p:
            par.check_on_vm("http.sys", "Dom1")
        assert p.elapsed < s.elapsed
        assert p.elapsed > s.elapsed / 8     # no free lunch

    def test_speedup_attribute(self, clean_testbed_session):
        tb = clean_testbed_session
        par = ParallelModChecker(tb.hypervisor, tb.profile, threads=4)
        out = par.check_on_vm("http.sys", "Dom1")
        assert out.parallel.speedup >= 1.0

    def test_one_thread_close_to_sequential(self):
        tb = build_testbed(5, seed=42)
        seq = ModChecker(tb.hypervisor, tb.profile)
        par = ParallelModChecker(tb.hypervisor, tb.profile, threads=1)
        with tb.clock.span() as s:
            seq.check_on_vm("http.sys", "Dom1")
        with tb.clock.span() as p:
            par.check_on_vm("http.sys", "Dom1")
        assert p.elapsed == pytest.approx(s.elapsed, rel=0.15)

    def test_invalid_threads(self, clean_testbed_session):
        tb = clean_testbed_session
        with pytest.raises(ValueError):
            ParallelModChecker(tb.hypervisor, tb.profile, threads=0)

    def test_detects_infection_like_sequential(self):
        from repro.attacks import InlineHookAttack
        from repro.guest import build_catalog
        catalog = build_catalog(seed=42)
        infected = InlineHookAttack().apply(catalog["hal.dll"]).infected
        tb = build_testbed(4, seed=42,
                           infected={"Dom3": {"hal.dll": infected}})
        par = ParallelModChecker(tb.hypervisor, tb.profile, threads=4)
        assert not par.check_on_vm("hal.dll", "Dom3").report.clean
        assert par.check_on_vm("hal.dll", "Dom1").report.clean


class TestParallelPool:
    def test_pool_same_verdict_as_sequential(self, clean_testbed_session):
        tb = clean_testbed_session
        seq = ModChecker(tb.hypervisor, tb.profile)
        par = ParallelModChecker(tb.hypervisor, tb.profile, threads=4)
        r_seq = seq.check_pool("hal.dll").report
        r_par = par.check_pool("hal.dll").report
        assert r_par.all_clean == r_seq.all_clean
        assert sorted(r_par.verdicts) == sorted(r_seq.verdicts)
        assert len(r_par.pairs) == len(r_seq.pairs)

    def test_pool_parallel_faster_on_idle_host(self):
        tb = build_testbed(8, seed=42)
        seq = ModChecker(tb.hypervisor, tb.profile)
        par = ParallelModChecker(tb.hypervisor, tb.profile, threads=4)
        with tb.clock.span() as s:
            seq.check_pool("http.sys")
        with tb.clock.span() as p:
            par.check_pool("http.sys")
        assert p.elapsed < s.elapsed
        assert p.elapsed > s.elapsed / 8

    def test_pool_parser_time_attributed(self, clean_testbed_session):
        # Regression: the parallel path used to fold Parser work into
        # Searcher, reporting parser == 0.0 in every breakdown.
        tb = clean_testbed_session
        par = ParallelModChecker(tb.hypervisor, tb.profile, threads=4)
        out = par.check_pool("hal.dll")
        assert out.timings.parser > 0
        assert out.timings.searcher > out.timings.parser
        assert out.parallel.cpu.parser > 0
        assert out.parallel.speedup > 1.0

    def test_pool_canonical_mode(self, clean_testbed_session):
        tb = clean_testbed_session
        par = ParallelModChecker(tb.hypervisor, tb.profile, threads=4)
        out = par.check_pool("hal.dll", mode="canonical")
        assert out.report.all_clean

    def test_pool_detects_infection(self):
        from repro.attacks import InlineHookAttack
        from repro.guest import build_catalog
        catalog = build_catalog(seed=42)
        infected = InlineHookAttack().apply(catalog["hal.dll"]).infected
        tb = build_testbed(4, seed=42,
                           infected={"Dom3": {"hal.dll": infected}})
        par = ParallelModChecker(tb.hypervisor, tb.profile, threads=4)
        report = par.check_pool("hal.dll").report
        assert report.flagged() == ["Dom3"]

    def test_check_all_modules_goes_parallel(self):
        tb = build_testbed(4, seed=42)
        par = ParallelModChecker(tb.hypervisor, tb.profile, threads=4)
        outcomes = par.check_all_modules()
        assert outcomes
        assert all(hasattr(o, "parallel") for o in outcomes.values())
