"""Restore-on-tamper repair engine: self-healing pools.

Covers the full remediation ladder: verified in-place restore (with
relocations re-applied at the victim's own base), the racing adversary
losing to the retry budget, quarantine escalation when it does not, and
the LDR-blinding attack that attestation must refuse to "repair".
"""

from __future__ import annotations

import pytest

from repro.attacks import (LdrBlindingAttack, RacingWriterAttack,
                           RuntimeCodePatchAttack)
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.core.daemon import CheckDaemon, RoundRobinPolicy
from repro.core.repair import (REPAIR_POLICIES, RemediationRecord,
                               RepairEngine, RepairStats, _clip_to_regions,
                               _diff_segments)
from repro.obs import make_observability

SEED = 42
VICTIM = "Dom2"


def make_checker(tb, policy="repair", attempts=3, **kwargs):
    return ModChecker(tb.hypervisor, tb.profile, repair_policy=policy,
                      repair_max_attempts=attempts, **kwargs)


def infect(tb, hal_blueprint, vm=VICTIM, attack=None):
    attack = attack or RuntimeCodePatchAttack()
    return attack.apply(tb.hypervisor.domain(vm).kernel, hal_blueprint)


class TestPolicies:
    def test_detect_only_is_default_and_never_repairs(self, clean_testbed,
                                                      hal_blueprint):
        infect(clean_testbed, hal_blueprint)
        mc = ModChecker(clean_testbed.hypervisor, clean_testbed.profile)
        assert mc.repair is None
        out = mc.check_pool("hal.dll")
        assert out.report.flagged() == [VICTIM]
        assert out.remediations == []
        # tampered state untouched
        assert not mc.check_pool("hal.dll").report.all_clean

    def test_unknown_policy_rejected(self, clean_testbed):
        with pytest.raises(ValueError, match="unknown repair policy"):
            make_checker(clean_testbed, policy="nuke-from-orbit")

    def test_policy_names_closed(self):
        assert REPAIR_POLICIES == (
            "detect-only", "repair", "quarantine-on-repeat-failure")


class TestVerifiedRepair:
    def test_tamper_is_repaired_and_reverified(self, clean_testbed,
                                               hal_blueprint):
        result = infect(clean_testbed, hal_blueprint)
        mc = make_checker(clean_testbed)
        out = mc.check_pool("hal.dll")
        assert out.report.flagged() == [VICTIM]
        (rec,) = out.remediations
        assert rec.status == "verified"
        assert rec.vm_name == VICTIM
        assert rec.attempts == 1
        assert rec.regions == (".text",)
        assert not rec.aborted and rec.reason is None
        # the pool is actually clean afterwards, not just reported so
        assert mc.check_pool("hal.dll").report.all_clean
        # the guest bytes themselves are restored
        kernel = clean_testbed.hypervisor.domain(VICTIM).kernel
        va = result.details["va"]
        restored = kernel.aspace.read(va, len(result.details["patch"]) // 2)
        assert restored.hex() == result.details["original"][:len(restored) * 2]

    def test_writes_only_unexplained_bytes(self, clean_testbed,
                                           hal_blueprint):
        """Relocation-explained differences must never be written.

        Clones load hal.dll at different bases, so the reference image
        differs from the victim's at every fixup site; a repair that
        wrote those would clobber the victim's own relocations. The
        write plan reconstructs the reference *at the victim's base*
        first, so only the tampered bytes remain to write.
        """
        patch = b"\xEB\xFE\x90\x90"
        infect(clean_testbed, hal_blueprint,
               attack=RuntimeCodePatchAttack(patch=patch))
        bases = {vm: clean_testbed.hypervisor.domain(vm).kernel
                 .module("hal.dll").base for vm in clean_testbed.vm_names}
        assert len(set(bases.values())) > 1, "testbed should relocate"
        mc = make_checker(clean_testbed)
        (rec,) = mc.check_pool("hal.dll").remediations
        assert rec.status == "verified"
        # one contiguous patch -> one hunk, exactly the patched bytes
        assert rec.hunks_written == 1
        assert rec.bytes_written == len(patch)

    def test_mttr_is_deterministic_per_seed(self, hal_blueprint):
        def run():
            tb = build_testbed(4, seed=SEED)
            infect(tb, hal_blueprint)
            mc = make_checker(tb)
            (rec,) = mc.check_pool("hal.dll").remediations
            return rec.detected_at, rec.resolved_at, rec.mttr
        assert run() == run()

    def test_mttr_measures_detect_to_verified(self, clean_testbed,
                                              hal_blueprint):
        infect(clean_testbed, hal_blueprint)
        mc = make_checker(clean_testbed)
        (rec,) = mc.check_pool("hal.dll").remediations
        assert rec.mttr == pytest.approx(rec.resolved_at - rec.detected_at)
        assert rec.mttr > 0

    def test_repair_events_emitted(self, clean_testbed, hal_blueprint):
        infect(clean_testbed, hal_blueprint)
        obs = make_observability(clean_testbed.clock)
        mc = make_checker(clean_testbed, obs=obs)
        mc.check_pool("hal.dll")
        (attempted,) = obs.events.by_name("repair.attempted")
        assert attempted.attrs["vm"] == VICTIM
        assert attempted.attrs["reference"] != VICTIM
        (verified,) = obs.events.by_name("repair.verified")
        assert verified.attrs["mttr"] > 0
        assert not obs.events.by_name("repair.failed")

    def test_manifests_invalidated_with_repaired_reason(self, clean_testbed,
                                                        hal_blueprint):
        infect(clean_testbed, hal_blueprint)
        mc = make_checker(clean_testbed, incremental=True)
        calls = []
        original = mc.invalidate_manifests

        def spy(vm, module=None, *, reason):
            calls.append((vm, module, reason))
            return original(vm, module, reason=reason)

        mc.invalidate_manifests = spy
        mc.check_pool("hal.dll")
        assert (VICTIM, "hal.dll", "repaired") in calls

    def test_no_remediation_on_clean_pool(self, clean_testbed):
        mc = make_checker(clean_testbed)
        out = mc.check_pool("hal.dll")
        assert out.report.all_clean
        assert out.remediations == []
        assert mc.repair.stats.attempts == 0


class TestRacingAdversary:
    def test_racer_below_budget_converges_verified(self, clean_testbed,
                                                   hal_blueprint):
        mc = make_checker(clean_testbed, attempts=3)
        racer = RacingWriterAttack(rewrites=2)
        racer.apply(clean_testbed.hypervisor.domain(VICTIM).kernel,
                    hal_blueprint)
        racer.arm(clean_testbed.clock)
        try:
            (rec,) = mc.check_pool("hal.dll").remediations
        finally:
            racer.disarm()
        assert rec.status == "verified"
        assert rec.attempts == 3            # two rounds lost to the racer
        assert rec.raced_writes >= 2        # armed traps saw the rewrites
        assert racer.rewrites_done == 2
        assert mc.check_pool("hal.dll").report.all_clean

    def test_racer_at_budget_escalates_to_quarantine(self, clean_testbed,
                                                     hal_blueprint):
        mc = make_checker(clean_testbed,
                          policy="quarantine-on-repeat-failure", attempts=2)
        quarantined = []
        mc.repair.on_quarantine = \
            lambda vm, mod, why: quarantined.append((vm, mod))
        racer = RacingWriterAttack(rewrites=10)
        racer.apply(clean_testbed.hypervisor.domain(VICTIM).kernel,
                    hal_blueprint)
        racer.arm(clean_testbed.clock)
        try:
            (rec,) = mc.check_pool("hal.dll").remediations
        finally:
            racer.disarm()
        assert rec.status == "quarantined"
        assert rec.attempts == 2
        assert not rec.aborted
        assert quarantined == [(VICTIM, "hal.dll")]

    def test_no_silent_failures_without_quarantine(self, clean_testbed,
                                                   hal_blueprint):
        """Plain "repair" policy: an unhealed VM ends "failed", loudly."""
        mc = make_checker(clean_testbed, attempts=2)
        racer = RacingWriterAttack(rewrites=10)
        racer.apply(clean_testbed.hypervisor.domain(VICTIM).kernel,
                    hal_blueprint)
        racer.arm(clean_testbed.clock)
        try:
            (rec,) = mc.check_pool("hal.dll").remediations
        finally:
            racer.disarm()
        assert rec.status == "failed"
        assert rec.reason == "re-verification still flagged"

    def test_race_is_deterministic(self, hal_blueprint):
        def run():
            tb = build_testbed(4, seed=SEED)
            mc = make_checker(tb, attempts=3)
            racer = RacingWriterAttack(rewrites=2)
            racer.apply(tb.hypervisor.domain(VICTIM).kernel, hal_blueprint)
            racer.arm(tb.clock)
            try:
                (rec,) = mc.check_pool("hal.dll").remediations
            finally:
                racer.disarm()
            return (rec.status, rec.attempts, rec.raced_writes,
                    rec.mttr, tuple(racer.rewrite_times))
        assert run() == run()


class TestBlindingAttack:
    def test_spoofed_dllbase_aborts_without_writing(self, clean_testbed,
                                                    hal_blueprint):
        kernel = clean_testbed.hypervisor.domain(VICTIM).kernel
        result = LdrBlindingAttack().apply(kernel, hal_blueprint)
        alias = kernel.module(result.details["alias"])
        before = bytes(kernel.aspace.read(alias.base, alias.size_of_image))
        mc = make_checker(clean_testbed)
        out = mc.check_pool("hal.dll")
        assert out.report.flagged() == [VICTIM]
        (rec,) = out.remediations
        assert rec.aborted
        assert rec.status == "failed"
        assert rec.reason.startswith("aborted:")
        assert rec.bytes_written == 0 and rec.hunks_written == 0
        # the aliased innocent module was never touched
        after = bytes(kernel.aspace.read(alias.base, alias.size_of_image))
        assert after == before

    def test_abort_never_escalates_past_quarantine_label(self, clean_testbed,
                                                         hal_blueprint):
        """Quarantine policy still quarantines, but the record keeps
        ``aborted`` so forensics can tell refusal from retry exhaustion."""
        kernel = clean_testbed.hypervisor.domain(VICTIM).kernel
        LdrBlindingAttack().apply(kernel, hal_blueprint)
        mc = make_checker(clean_testbed,
                          policy="quarantine-on-repeat-failure")
        (rec,) = mc.check_pool("hal.dll").remediations
        assert rec.status == "quarantined"
        assert rec.aborted
        assert rec.attempts == 1            # refusal does not retry

    def test_abort_recorded_in_evidence_bundle(self, clean_testbed,
                                               hal_blueprint, tmp_path):
        from repro.forensics import EvidenceRecorder, load_bundle
        kernel = clean_testbed.hypervisor.domain(VICTIM).kernel
        LdrBlindingAttack().apply(kernel, hal_blueprint)
        recorder = EvidenceRecorder(out_dir=tmp_path)
        mc = make_checker(clean_testbed, evidence=recorder)
        mc.check_pool("hal.dll")
        bundle = recorder.last
        (rec,) = bundle.remediations
        assert rec.aborted and rec.bytes_written == 0
        # and it round-trips through the persisted JSON
        (path,) = sorted(tmp_path.glob("*.json"))
        loaded = load_bundle(path)
        (rec2,) = loaded.remediations
        assert rec2.to_dict() == rec.to_dict()


class TestRepairUnderArmedManifests:
    def test_privileged_restore_does_not_self_trap(self, clean_testbed,
                                                   hal_blueprint):
        """Regression: the repair write path runs against frames the
        event-driven pipeline keeps write-protected; an unprivileged
        write there would trap (or fault) on our own remediation."""
        mc = make_checker(clean_testbed, event_driven=True)
        assert mc.check_pool("hal.dll").report.all_clean   # arm manifests
        infect(clean_testbed, hal_blueprint)               # fires real trap
        out = mc.check_pool("hal.dll")
        (rec,) = out.remediations
        assert rec.status == "verified"
        assert rec.raced_writes == 0        # our own writes are invisible
        hv = clean_testbed.hypervisor
        assert all(hv.traps.pending(vm) == 0
                   for vm in clean_testbed.vm_names)
        assert mc.check_pool("hal.dll").report.all_clean

    def test_event_driven_fast_path_resumes_after_repair(self, clean_testbed,
                                                         hal_blueprint):
        mc = make_checker(clean_testbed, event_driven=True)
        mc.check_pool("hal.dll")
        infect(clean_testbed, hal_blueprint)
        mc.check_pool("hal.dll")                 # detect + repair + re-arm

        def pages_mapped():
            return sum(mc.vmi_for(vm).stats.pages_mapped
                       for vm in clean_testbed.vm_names)

        base = pages_mapped()
        assert mc.check_pool("hal.dll").report.all_clean
        # steady state again: the re-check rode the armed manifests
        assert pages_mapped() == base


class TestReconstruction:
    def test_base_collision_degenerates_to_plain_restore(self, clean_testbed):
        """Same-base suspect/reference: no relocation delta to re-apply;
        the reconstruction must be byte-identical to the reference."""
        mc = make_checker(clean_testbed)
        fetch = mc.fetch_modules("hal.dll", clean_testbed.vm_names)
        ref = fetch.parsed[0]
        off = ref.code_regions[0].start + 0x30       # inside .text
        tampered = bytearray(ref.image)
        tampered[off] ^= 0xFF
        suspect = type(ref)(vm_name="Evil", module_name=ref.module_name,
                            base=ref.base, image=bytes(tampered),
                            header_regions=ref.header_regions,
                            code_regions=ref.code_regions)
        recon = mc.repair._reconstruct(suspect, ref)
        assert bytes(recon) == bytes(ref.image)
        assert _diff_segments(suspect.image, recon) == [(off, off + 1)]

    def test_reconstruction_rebases_reference_to_victim(self, clean_testbed):
        """Distinct bases: the reconstruction equals the *victim's* clean
        image (fixups at the victim's base), not the reference's bytes —
        writing raw reference bytes would be the relocation mis-write."""
        mc = make_checker(clean_testbed)
        fetch = mc.fetch_modules("hal.dll", clean_testbed.vm_names)
        by_vm = {p.vm_name: p for p in fetch.parsed}
        ref, victim = by_vm["Dom1"], by_vm[VICTIM]
        assert ref.base != victim.base
        assert bytes(ref.image) != bytes(victim.image)
        recon = mc.repair._reconstruct(victim, ref)
        # within every hashed region the rebased reconstruction equals
        # the victim's own clean bytes (writable data — IAT slots
        # resolved per-VM — may differ and is clipped from the plan)
        plan = _clip_to_regions(_diff_segments(victim.image, recon),
                                victim.all_regions())
        assert plan == []
        for region in victim.all_regions():
            assert recon[region.start:region.end] == \
                victim.region_bytes(region)
        # while the raw reference bytes do NOT (the mis-write a naive
        # restore would make: stale relocations at the wrong base)
        assert bytes(recon) != bytes(ref.image)

    def test_diff_segments_joins_nearby_runs(self):
        a = bytearray(64)
        b = bytearray(64)
        b[4] = 1
        b[10] = 1          # 5 equal bytes apart -> joined (gap <= 8)
        b[40] = 1          # far away -> separate segment
        assert _diff_segments(bytes(a), bytes(b)) == [(4, 11), (40, 41)]
        with pytest.raises(ValueError):
            _diff_segments(b"ab", b"abc")


class TestDaemonIntegration:
    def test_daemon_raises_repaired_alert_and_recovers(self, clean_testbed,
                                                       hal_blueprint):
        mc = make_checker(clean_testbed)
        daemon = CheckDaemon(mc, RoundRobinPolicy(per_cycle=4))
        infect(clean_testbed, hal_blueprint)
        alerts = daemon.run_cycle()
        kinds = {a.kind for a in alerts}
        assert "integrity" in kinds and "repaired" in kinds
        assert daemon.repairs_verified == 1
        # next cycle: nothing left to flag
        assert daemon.run_cycle() == []

    def test_daemon_trips_breaker_on_repair_quarantine(self, clean_testbed,
                                                       hal_blueprint):
        mc = make_checker(clean_testbed,
                          policy="quarantine-on-repeat-failure", attempts=2)
        daemon = CheckDaemon(mc, RoundRobinPolicy(per_cycle=4))
        racer = RacingWriterAttack(rewrites=10)
        racer.apply(clean_testbed.hypervisor.domain(VICTIM).kernel,
                    hal_blueprint)
        racer.arm(clean_testbed.clock)
        try:
            alerts = daemon.run_cycle()
        finally:
            racer.disarm()
        assert daemon.repairs_quarantined == 1
        assert VICTIM in daemon.quarantined
        assert any(a.kind == "repair-quarantined" for a in alerts)
        # the quarantined VM no longer votes next cycle
        assert VICTIM not in daemon._active_vms()

    def test_failed_repair_is_never_silent(self, clean_testbed,
                                           hal_blueprint):
        mc = make_checker(clean_testbed, attempts=1)
        daemon = CheckDaemon(mc, RoundRobinPolicy(per_cycle=4))
        racer = RacingWriterAttack(rewrites=10)
        racer.apply(clean_testbed.hypervisor.domain(VICTIM).kernel,
                    hal_blueprint)
        racer.arm(clean_testbed.clock)
        try:
            alerts = daemon.run_cycle()
        finally:
            racer.disarm()
        assert daemon.repairs_failed == 1
        assert any(a.kind == "repair-failed" for a in alerts)


class TestRecordsAndStats:
    def test_record_roundtrip(self):
        rec = RemediationRecord(vm_name="Dom2", module_name="hal.dll",
                                status="verified", attempts=2,
                                reference_vm="Dom1", hunks_written=3,
                                bytes_written=17, raced_writes=1,
                                detected_at=1.0, resolved_at=1.5,
                                regions=(".text",))
        clone = RemediationRecord.from_dict(rec.to_dict())
        assert clone == rec
        assert clone.mttr == pytest.approx(0.5)

    def test_mttr_only_for_verified(self):
        rec = RemediationRecord(vm_name="v", module_name="m",
                                status="failed", detected_at=1.0,
                                resolved_at=2.0)
        assert rec.mttr is None

    def test_stats_fold_terminal_outcomes(self):
        stats = RepairStats()
        stats.note(RemediationRecord(vm_name="a", module_name="m",
                                     status="verified", detected_at=0.0,
                                     resolved_at=2.0, raced_writes=1))
        stats.note(RemediationRecord(vm_name="b", module_name="m",
                                     status="quarantined", aborted=True))
        assert stats.verified == 1 and stats.quarantined == 1
        assert stats.aborted == 1 and stats.raced_writes == 1
        assert stats.mttr_mean == pytest.approx(2.0)
        assert stats.mttr_max == pytest.approx(2.0)

    def test_engine_rejects_bad_config(self, clean_testbed):
        mc = ModChecker(clean_testbed.hypervisor, clean_testbed.profile)
        with pytest.raises(ValueError):
            RepairEngine(mc, max_attempts=0)


class TestRepairMetrics:
    def test_bridge_exports_repair_series(self, clean_testbed,
                                          hal_blueprint):
        infect(clean_testbed, hal_blueprint)
        obs = make_observability(clean_testbed.clock)
        mc = make_checker(clean_testbed, obs=obs)
        mc.check_pool("hal.dll")
        names = set(obs.metrics.snapshot())
        assert "modchecker_repair_attempts_total" in names
        assert "modchecker_repair_outcomes_total" in names
        assert "modchecker_repair_mttr_seconds" in names
