"""Tests for digest agility in the Integrity-Checker."""

import pytest

from repro.cloud import build_testbed
from repro.core import SUPPORTED_HASHES, IntegrityChecker, ModChecker


class TestIntegrityCheckerHashes:
    def test_supported_list(self):
        assert "md5" in SUPPORTED_HASHES          # the paper's choice
        assert "sha256" in SUPPORTED_HASHES       # the modern choice

    def test_unknown_hash_rejected(self):
        with pytest.raises(ValueError, match="unknown hash"):
            IntegrityChecker(hash_algorithm="crc32")

    def test_digest_lengths(self):
        assert len(IntegrityChecker(hash_algorithm="md5").digest(b"x")) == 32
        assert len(IntegrityChecker(hash_algorithm="sha1").digest(b"x")) == 40
        assert len(IntegrityChecker(
            hash_algorithm="sha256").digest(b"x")) == 64

    def test_default_is_paper_md5(self):
        checker = IntegrityChecker()
        assert checker.hash_algorithm == "md5"
        assert checker.digest(b"abc") == \
            "900150983cd24fb0d6963f7d28e17f72"


class TestEndToEnd:
    @pytest.mark.parametrize("algorithm", SUPPORTED_HASHES)
    def test_clean_pool_clean_under_every_hash(self, algorithm,
                                               clean_testbed_session):
        tb = clean_testbed_session
        mc = ModChecker(tb.hypervisor, tb.profile, hash_algorithm=algorithm)
        assert mc.check_pool("hal.dll").report.all_clean

    @pytest.mark.parametrize("algorithm", SUPPORTED_HASHES)
    def test_infection_detected_under_every_hash(self, algorithm):
        from repro.attacks import attack_for_experiment
        from repro.guest import build_catalog
        attack, module = attack_for_experiment("E1")
        catalog = build_catalog(seed=42)
        infected = attack.apply(catalog[module]).infected
        tb = build_testbed(4, seed=42,
                           infected={"Dom2": {module: infected}})
        mc = ModChecker(tb.hypervisor, tb.profile, hash_algorithm=algorithm)
        report = mc.check_pool(module).report
        assert report.flagged() == ["Dom2"]
        assert report.mismatched_regions("Dom2") == (".text",)
