"""Unit tests for the report record types."""

import pytest

from repro.core.report import (PairComparison, PoolReport, VMCheckReport,
                               VMVerdict)


def _pair(a="VmA", b="VmB", mismatched=()):
    return PairComparison(a, b, tuple(mismatched))


class TestPairComparison:
    def test_matched(self):
        assert _pair().matched
        assert not _pair(mismatched=[".text"]).matched

    def test_involves_other(self):
        pair = _pair()
        assert pair.involves("VmA") and pair.involves("VmB")
        assert not pair.involves("VmC")
        assert pair.other("VmA") == "VmB"
        with pytest.raises(ValueError):
            pair.other("VmC")


class TestVMCheckReport:
    def _report(self, matches, comparisons, mismatched=()):
        pairs = tuple(
            _pair("T", f"O{i}",
                  mismatched if i >= matches else ())
            for i in range(comparisons))
        return VMCheckReport(module_name="m", target_vm="T", pairs=pairs,
                             matches=matches, comparisons=comparisons)

    def test_strict_majority(self):
        assert self._report(3, 4).clean
        assert not self._report(2, 4).clean          # exactly half
        assert not self._report(0, 4, [".text"]).clean

    def test_mismatched_regions_deduplicated_ordered(self):
        report = VMCheckReport(
            module_name="m", target_vm="T",
            pairs=(_pair("T", "A", [".text", "INIT"]),
                   _pair("T", "B", [".text"])),
            matches=0, comparisons=2)
        assert report.mismatched_regions() == (".text", "INIT")


class TestPoolReport:
    def _pool(self):
        pairs = [_pair("A", "B"), _pair("A", "C", [".text"]),
                 _pair("B", "C", [".text"])]
        verdicts = {
            "A": VMVerdict("A", 1, 2, True, ()),
            "B": VMVerdict("B", 1, 2, True, ()),
            "C": VMVerdict("C", 0, 2, False, (".text",)),
        }
        return PoolReport(module_name="m", vm_names=["A", "B", "C"],
                          pairs=pairs, verdicts=verdicts)

    def test_flagged_and_clean(self):
        report = self._pool()
        assert report.flagged() == ["C"]
        assert report.clean_vms() == ["A", "B"]
        assert not report.all_clean

    def test_pair_lookup_symmetric(self):
        report = self._pool()
        assert report.pair("C", "A").mismatched_regions == (".text",)
        with pytest.raises(KeyError):
            report.pair("A", "Z")

    def test_mismatched_regions_accessor(self):
        assert self._pool().mismatched_regions("C") == (".text",)
