"""Unit tests for the ModChecker orchestrator."""

import pytest

from repro.attacks import OpcodeReplacementAttack
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.errors import InsufficientPool, ModuleNotLoadedError


@pytest.fixture(scope="module")
def checker(clean_testbed_session):
    return ModChecker(clean_testbed_session.hypervisor,
                      clean_testbed_session.profile)


class TestPoolCheck:
    def test_clean_pool_all_clean(self, checker):
        out = checker.check_pool("hal.dll")
        assert out.report.all_clean
        assert len(out.report.vm_names) == 5

    def test_module_not_loaded_anywhere(self, checker):
        with pytest.raises(InsufficientPool):
            checker.check_pool("rootkit.sys")

    def test_subset_of_vms(self, checker, clean_testbed_session):
        vms = clean_testbed_session.vm_names[:3]
        out = checker.check_pool("http.sys", vms)
        assert out.report.vm_names == vms
        assert len(out.report.pairs) == 3

    def test_timings_populated(self, checker):
        out = checker.check_pool("http.sys")
        t = out.timings
        assert t.searcher > 0 and t.parser > 0 and t.checker > 0
        assert t.searcher > t.parser            # paper's component ordering
        assert t.total == pytest.approx(t.searcher + t.parser + t.checker)

    def test_per_vm_searcher_times(self, checker, clean_testbed_session):
        out = checker.check_pool("hal.dll")
        assert set(out.per_vm_searcher) == set(clean_testbed_session.vm_names)
        assert all(v > 0 for v in out.per_vm_searcher.values())


class TestTargetCheck:
    def test_clean_target(self, checker):
        out = checker.check_on_vm("hal.dll", "Dom2")
        assert out.report.clean
        assert out.report.comparisons == 4

    def test_target_outside_pool_list_included(self, checker):
        out = checker.check_on_vm("hal.dll", "Dom1", vms=["Dom2", "Dom3"])
        assert out.report.comparisons == 2

    def test_missing_target_module(self, checker):
        with pytest.raises(ModuleNotLoadedError):
            checker.check_on_vm("nosuch.sys", "Dom1")

    def test_single_vm_pool_rejected(self, checker):
        with pytest.raises(InsufficientPool):
            checker.check_on_vm("hal.dll", "Dom1", vms=["Dom1"])


class TestProfileDerivation:
    def test_profile_derived_from_first_guest(self, clean_testbed_session):
        mc = ModChecker(clean_testbed_session.hypervisor)   # no profile
        assert mc.check_pool("hal.dll").report.all_clean

    def test_no_guests_rejected(self):
        from repro.hypervisor import Hypervisor
        with pytest.raises(InsufficientPool):
            ModChecker(Hypervisor())


class TestModuleSweep:
    def test_check_all_modules(self, checker, clean_testbed_session):
        outcomes = checker.check_all_modules(
            vms=clean_testbed_session.vm_names[:3])
        assert set(outcomes) == set(clean_testbed_session.catalog)
        assert all(o.report.all_clean for o in outcomes.values())


class TestInfectedPool:
    def test_detection_and_localisation(self):
        from repro.guest import build_catalog
        catalog = build_catalog(seed=42)
        infected_bp = OpcodeReplacementAttack().apply(
            catalog["hal.dll"]).infected
        tb = build_testbed(4, seed=42,
                           infected={"Dom2": {"hal.dll": infected_bp}})
        mc = ModChecker(tb.hypervisor, tb.profile)
        out = mc.check_pool("hal.dll")
        assert out.report.flagged() == ["Dom2"]
        assert out.report.mismatched_regions("Dom2") == (".text",)
        # other modules remain clean on the infected VM
        assert mc.check_pool("http.sys").report.all_clean

    def test_infected_target_mode(self):
        from repro.guest import build_catalog
        catalog = build_catalog(seed=42)
        infected_bp = OpcodeReplacementAttack().apply(
            catalog["hal.dll"]).infected
        tb = build_testbed(4, seed=42,
                           infected={"Dom2": {"hal.dll": infected_bp}})
        mc = ModChecker(tb.hypervisor, tb.profile)
        assert not mc.check_on_vm("hal.dll", "Dom2").report.clean
        assert mc.check_on_vm("hal.dll", "Dom1").report.clean


class TestCacheFlushing:
    def test_flush_each_round_costs_more(self, clean_testbed_session):
        hv = clean_testbed_session.hypervisor
        flushing = ModChecker(hv, clean_testbed_session.profile,
                              flush_caches_each_round=True)
        caching = ModChecker(hv, clean_testbed_session.profile,
                             flush_caches_each_round=False)
        # warm both, then measure a second round
        flushing.check_pool("hal.dll")
        caching.check_pool("hal.dll")
        with hv.clock.span() as s_flush:
            flushing.check_pool("hal.dll")
        with hv.clock.span() as s_cache:
            caching.check_pool("hal.dll")
        assert s_cache.elapsed < s_flush.elapsed


class TestFetchAccounting:
    def test_searcher_time_charged_for_missing_module(self):
        # Regression: a VM where the module is *not* loaded used to
        # drop its Searcher walk from the timings entirely — the walk
        # was paid on the Dom0 clock but never attributed.
        tb = build_testbed(4, seed=42)
        tb.hypervisor.domain("Dom2").kernel.unload_module("dummy.sys")
        mc = ModChecker(tb.hypervisor, tb.profile)
        parsed, timings, per_vm, failed = mc.fetch_modules(
            "dummy.sys", tb.vm_names)
        assert len(parsed) == 3
        assert failed == {}
        # the fruitless walk on Dom2 is still accounted
        assert set(per_vm) == set(tb.vm_names)
        assert per_vm["Dom2"] > 0
        assert timings.searcher == pytest.approx(sum(per_vm.values()))

    def test_fetch_result_unpacks_with_star(self):
        tb = build_testbed(3, seed=42)
        mc = ModChecker(tb.hypervisor, tb.profile)
        parsed, *rest = mc.fetch_modules("hal.dll", tb.vm_names)
        assert len(parsed) == 3
        assert len(rest) == 3
