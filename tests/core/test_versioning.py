"""Tests for mixed-version pool handling."""


from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.core.versioning import (check_pool_versioned,
                                   partition_by_version)
from repro.guest.catalog import STANDARD_CATALOG
from repro.pe import PEBuilder
from repro.rng import derive_seed


def _updated_driver(name="hal.dll"):
    """A plausibly 'updated' build of one driver (new link timestamp and
    different code: a different build seed)."""
    spec = next(s for s in STANDARD_CATALOG if s.name == name)
    kwargs = dict(seed=derive_seed(777, "update", name),
                  n_functions=spec.n_functions,
                  avg_function_size=spec.avg_function_size,
                  data_size=spec.data_size,
                  timestamp=0x5150_0000)          # newer link date
    if spec.imports is not None:
        kwargs["imports"] = spec.imports
    return PEBuilder(name, **kwargs).build()


def _mixed_pool(n_vms=7, updated_vms=("Dom5", "Dom6", "Dom7"),
                module="hal.dll"):
    updated = _updated_driver(module)
    tb = build_testbed(n_vms, seed=42,
                       infected={vm: {module: updated}
                                 for vm in updated_vms})
    mc = ModChecker(tb.hypervisor, tb.profile)
    parsed, *_ = mc.fetch_modules(module, tb.vm_names)
    return tb, mc, parsed


class TestPartition:
    def test_uniform_pool_single_group(self, clean_testbed_session):
        tb = clean_testbed_session
        mc = ModChecker(tb.hypervisor, tb.profile)
        parsed, *_ = mc.fetch_modules("hal.dll", tb.vm_names)
        groups = partition_by_version(parsed)
        assert len(groups) == 1
        assert groups[0].size == len(tb.vm_names)

    def test_mixed_pool_two_groups(self):
        _, _, parsed = _mixed_pool()
        groups = partition_by_version(parsed)
        assert [g.size for g in groups] == [4, 3]
        assert set(groups[1].vm_names) == {"Dom5", "Dom6", "Dom7"}


class TestVersionedCheck:
    def test_naive_check_false_positives_on_mixed_pool(self):
        """The problem, both regimes: with a 6/3 split the updated
        minority is falsely flagged as infected; with a 4/3 split no
        cohort holds a strict majority and the *entire pool* alarms."""
        _, mc, parsed = _mixed_pool(
            n_vms=9, updated_vms=("Dom7", "Dom8", "Dom9"))
        naive = mc.checker.check_pool(parsed)
        assert set(naive.flagged()) == {"Dom7", "Dom8", "Dom9"}

        _, mc, parsed = _mixed_pool()      # 4 old / 3 updated
        naive = mc.checker.check_pool(parsed)
        assert len(naive.flagged()) == 7

    def test_versioned_check_accepts_rollout(self):
        """The fix: per-version voting clears both cohorts."""
        _, mc, parsed = _mixed_pool()
        report = check_pool_versioned(parsed, mc.checker)
        assert report.all_clean
        assert report.singletons == []
        assert len(report.group_reports) == 2

    def test_tamper_within_old_cohort_still_caught(self):
        from repro.core.parser import ModuleParser
        from repro.core.searcher import ModuleCopy
        _, mc, parsed = _mixed_pool()
        victim = next(p for p in parsed if p.vm_name == "Dom2")
        image = bytearray(victim.image)
        text = next(r for r in victim.code_regions if r.name == ".text")
        image[text.start + 12] ^= 0x40
        tampered = ModuleParser().parse(ModuleCopy(
            victim.vm_name, victim.module_name, victim.base,
            bytes(image), 0))
        parsed = [tampered if p.vm_name == "Dom2" else p for p in parsed]
        report = check_pool_versioned(parsed, mc.checker)
        assert report.flagged() == ["Dom2"]

    def test_header_tamper_becomes_suspicious_singleton(self):
        """Header tampering changes the fingerprint, landing the victim
        in a version group of one — reported as a singleton."""
        from repro.core.parser import ModuleParser
        from repro.core.searcher import ModuleCopy
        import struct
        _, mc, parsed = _mixed_pool()
        victim = next(p for p in parsed if p.vm_name == "Dom3")
        image = bytearray(victim.image)
        # forge TimeDateStamp in the in-memory FILE header
        e_lfanew = struct.unpack_from("<I", image, 0x3C)[0]
        struct.pack_into("<I", image, e_lfanew + 8, 0x01020304)
        tampered = ModuleParser().parse(ModuleCopy(
            victim.vm_name, victim.module_name, victim.base,
            bytes(image), 0))
        parsed = [tampered if p.vm_name == "Dom3" else p for p in parsed]
        report = check_pool_versioned(parsed, mc.checker)
        assert report.singletons == ["Dom3"]
        assert "Dom3" in report.flagged()

    def test_group_of(self):
        _, mc, parsed = _mixed_pool()
        report = check_pool_versioned(parsed, mc.checker)
        assert report.group_of("Dom5").size == 3
        assert report.group_of("Dom1").size == 4
        assert report.group_of("DomZ") is None

    def test_empty_pool(self):
        report = check_pool_versioned([])
        assert report.all_clean
