"""Unit + integration tests for module carving (anti-DKOM extension)."""

import pytest

from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.core.carver import (CarvedModule, ModuleCarver, identify_carved,
                               module_fingerprint)
from repro.core.searcher import ModuleSearcher


@pytest.fixture
def tb():
    return build_testbed(3, seed=42)


@pytest.fixture
def mc(tb):
    return ModChecker(tb.hypervisor, tb.profile)


class TestCarve:
    def test_finds_every_loaded_module(self, tb, mc):
        carver = ModuleCarver(mc.vmi_for("Dom1"))
        carved = carver.carve()
        kernel = tb.hypervisor.domain("Dom1").kernel
        assert {m.base for m in carved} == \
            {m.base for m in kernel.modules.values()}

    def test_carved_images_match_searcher_copies(self, tb, mc):
        vmi = mc.vmi_for("Dom1")
        carved = {m.base: m for m in ModuleCarver(vmi).carve()}
        searcher = ModuleSearcher(vmi)
        for entry in searcher.list_modules():
            copy = searcher.copy_module(entry.name)
            assert carved[entry.dll_base].image == copy.image, entry.name

    def test_no_false_hits_in_gaps(self, tb, mc):
        """Random-gap pages between modules never carve as modules."""
        carver = ModuleCarver(mc.vmi_for("Dom1"))
        kernel = tb.hypervisor.domain("Dom1").kernel
        true_bases = {m.base for m in kernel.modules.values()}
        assert all(m.base in true_bases for m in carver.carve())

    def test_page_directory_skip_is_cheap(self, tb, mc):
        """The PDE-guided sweep must not map every arena page."""
        vmi = mc.vmi_for("Dom1")
        vmi.flush_caches()
        before = vmi.stats.pages_mapped
        ModuleCarver(vmi).carve()
        mapped = vmi.stats.pages_mapped - before
        arena_pages = (0xFA00_0000 - 0xF700_0000) // 0x1000
        assert mapped < arena_pages / 10


class TestFingerprint:
    def test_clones_share_fingerprint(self, tb, mc):
        a = ModuleSearcher(mc.vmi_for("Dom1")).copy_module("hal.dll")
        b = ModuleSearcher(mc.vmi_for("Dom2")).copy_module("hal.dll")
        assert a.image != b.image                      # relocated differently
        assert module_fingerprint(a.image) == module_fingerprint(b.image)

    def test_different_modules_differ(self, tb, mc):
        searcher = ModuleSearcher(mc.vmi_for("Dom1"))
        a = searcher.copy_module("hal.dll")
        b = searcher.copy_module("http.sys")
        assert module_fingerprint(a.image) != module_fingerprint(b.image)

    def test_identify_carved(self, tb, mc):
        searcher = ModuleSearcher(mc.vmi_for("Dom1"))
        copy = searcher.copy_module("ndis.sys")
        carved = CarvedModule("Dom1", copy.base, copy.image)
        named = {e.name: ModuleSearcher(mc.vmi_for("Dom2")).copy_module(e.name)
                 for e in searcher.list_modules()}
        assert identify_carved(carved, named) == "ndis.sys"

    def test_identify_unknown_returns_none(self, tb, mc):
        searcher = ModuleSearcher(mc.vmi_for("Dom1"))
        copy = searcher.copy_module("ndis.sys")
        carved = CarvedModule("Dom1", copy.base, copy.image)
        assert identify_carved(carved, {}) is None


class TestHiddenModuleDetection:
    def test_clean_guest_has_no_hidden_modules(self, mc):
        assert mc.detect_hidden_modules("Dom1") == []

    def test_unlinked_module_detected_and_identified(self, tb, mc):
        tb.hypervisor.domain("Dom2").kernel.unload_module("dummy.sys")
        hidden = mc.detect_hidden_modules("Dom2")
        assert len(hidden) == 1
        carved, name = hidden[0]
        assert name == "dummy.sys"
        assert carved.vm_name == "Dom2"

    def test_hidden_clean_module_passes_integrity(self, tb, mc):
        tb.hypervisor.domain("Dom2").kernel.unload_module("dummy.sys")
        (carved, name), = mc.detect_hidden_modules("Dom2")
        report = mc.check_carved_module(carved, name)
        assert report.clean

    def test_hidden_infected_module_flagged(self, tb, mc):
        """The full rootkit scenario: patch the module in memory, then
        unlink it. The searcher is blind; the carver is not, and the
        integrity check convicts the carved image."""
        kernel = tb.hypervisor.domain("Dom2").kernel
        mod = kernel.module("dummy.sys")
        text = tb.catalog["dummy.sys"].section(".text")
        kernel.aspace.write(mod.base + text.virtual_address + 0x10, b"\xCC")
        kernel.unload_module("dummy.sys")

        (carved, name), = mc.detect_hidden_modules("Dom2")
        assert name == "dummy.sys"
        report = mc.check_carved_module(carved, name)
        assert not report.clean
        assert ".text" in report.mismatched_regions()
