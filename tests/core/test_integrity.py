"""Unit tests for the Integrity-Checker (pairing + majority votes)."""

import pytest

from repro.core.integrity import IntegrityChecker, md5_hex
from repro.core.parser import ModuleParser
from repro.core.searcher import ModuleCopy
from repro.guest.loader import ModuleLoader
from repro.guest.ldr import ListEntry
from repro.mem.address_space import KernelAddressSpace
from repro.mem.physical import PAGE_SIZE, PhysicalMemory
from repro.pe import build_driver


def _load_on_vm(blueprint, vm_name, seed):
    """Load a blueprint into a fresh kernel; return a ParsedModule."""
    aspace = KernelAddressSpace(PhysicalMemory(4096 * PAGE_SIZE), seed=seed)
    head = aspace.alloc_fixed(0x1000, "globals")
    aspace.write(head, ListEntry(head, head).pack())
    loader = ModuleLoader(aspace, head)
    mod = loader.load(blueprint)
    image = aspace.read(mod.base, mod.size_of_image)
    copy = ModuleCopy(vm_name, blueprint.name, mod.base, image,
                      mod.ldr_entry_va)
    return ModuleParser().parse(copy)


@pytest.fixture(scope="module")
def clean_pair():
    bp = build_driver("pair.sys", seed=21, imports=())
    return (_load_on_vm(bp, "VmA", 1), _load_on_vm(bp, "VmB", 2))


@pytest.fixture(scope="module")
def clean_pool():
    bp = build_driver("pool.sys", seed=22, imports=())
    return [_load_on_vm(bp, f"Vm{i}", seed=i) for i in range(5)]


class TestMd5:
    def test_known_digest(self):
        assert md5_hex(b"") == "d41d8cd98f00b204e9800998ecf8427e"
        assert md5_hex(b"abc") == "900150983cd24fb0d6963f7d28e17f72"


class TestPairComparison:
    def test_clean_pair_matches(self, clean_pair):
        result = IntegrityChecker().compare_pair(*clean_pair)
        assert result.matched
        assert result.mismatched_regions == ()

    def test_rva_stats_recorded_per_code_region(self, clean_pair):
        result = IntegrityChecker().compare_pair(*clean_pair)
        assert set(result.rva_stats) == {".text", "INIT"}
        assert all(s.clean for s in result.rva_stats.values())

    def test_header_tamper_detected(self, clean_pair):
        a, b = clean_pair
        image = bytearray(a.image)
        image[10] ^= 0xFF                      # inside the DOS header
        tampered = ModuleParser().parse(ModuleCopy(
            a.vm_name, a.module_name, a.base, bytes(image), 0))
        result = IntegrityChecker().compare_pair(tampered, b)
        assert result.mismatched_regions == ("IMAGE_DOS_HEADER",)

    def test_code_tamper_detected(self, clean_pair):
        a, b = clean_pair
        text = next(r for r in a.code_regions if r.name == ".text")
        image = bytearray(a.image)
        image[text.start + 40] ^= 0x41
        tampered = ModuleParser().parse(ModuleCopy(
            a.vm_name, a.module_name, a.base, bytes(image), 0))
        result = IntegrityChecker().compare_pair(tampered, b)
        assert ".text" in result.mismatched_regions

    def test_all_rva_modes_agree_on_clean_pair(self, clean_pair):
        for mode in ("faithful", "robust", "vectorized"):
            result = IntegrityChecker(rva_mode=mode).compare_pair(*clean_pair)
            assert result.matched, mode

    def test_unknown_rva_mode_rejected(self):
        with pytest.raises(ValueError):
            IntegrityChecker(rva_mode="quantum")

    def test_pair_helpers(self, clean_pair):
        result = IntegrityChecker().compare_pair(*clean_pair)
        assert result.involves("VmA") and result.involves("VmB")
        assert result.other("VmA") == "VmB"
        with pytest.raises(ValueError):
            result.other("VmZ")

    def test_charge_called(self, clean_pair):
        charges = []
        IntegrityChecker(charge=charges.append).compare_pair(*clean_pair)
        assert charges and charges[0] > 0


class TestTargetCheck:
    def test_clean_target(self, clean_pool):
        checker = IntegrityChecker()
        report = checker.check_target(clean_pool[0], clean_pool[1:])
        assert report.clean
        assert report.matches == report.comparisons == 4
        assert report.mismatched_regions() == ()

    def test_infected_target_flagged(self, clean_pool):
        target = clean_pool[0]
        image = bytearray(target.image)
        text = next(r for r in target.code_regions if r.name == ".text")
        image[text.start + 8] ^= 0x01
        infected = ModuleParser().parse(ModuleCopy(
            target.vm_name, target.module_name, target.base, bytes(image), 0))
        report = IntegrityChecker().check_target(infected, clean_pool[1:])
        assert not report.clean
        assert report.matches == 0
        assert report.mismatched_regions() == (".text",)


class TestPoolCheck:
    def _infect(self, parsed, offset_in_text=8):
        image = bytearray(parsed.image)
        text = next(r for r in parsed.code_regions if r.name == ".text")
        image[text.start + offset_in_text] ^= 0x01
        return ModuleParser().parse(ModuleCopy(
            parsed.vm_name, parsed.module_name, parsed.base, bytes(image), 0))

    def test_all_clean(self, clean_pool):
        report = IntegrityChecker().check_pool(clean_pool)
        assert report.all_clean
        assert report.flagged() == []
        assert len(report.pairs) == 10       # C(5, 2)

    def test_single_infection_flagged(self, clean_pool):
        pool = list(clean_pool)
        pool[2] = self._infect(pool[2])
        report = IntegrityChecker().check_pool(pool)
        assert report.flagged() == ["Vm2"]
        assert report.verdicts["Vm2"].matches == 0
        assert report.mismatched_regions("Vm2") == (".text",)
        for name in ("Vm0", "Vm1", "Vm3", "Vm4"):
            assert report.verdicts[name].clean
            assert report.verdicts[name].matches == 3

    def test_majority_infected_flags_minority(self, clean_pool):
        """SQL-Slammer scenario (§III-B): when most VMs carry the same
        infection, the *clean* VMs lose the vote — but a discrepancy is
        still visible in the pair matrix."""
        pool = [self._infect(p) if i != 0 else p
                for i, p in enumerate(clean_pool)]
        report = IntegrityChecker().check_pool(pool)
        assert report.flagged() == ["Vm0"]
        assert not report.all_clean          # discrepancy still raised

    def test_even_split_flags_everyone(self, clean_pool):
        pool = [self._infect(p) if i < 2 else p
                for i, p in enumerate(clean_pool[:4])]
        report = IntegrityChecker().check_pool(pool)
        # 4 VMs: each matches only 1 other; majority needs > 1.5.
        assert set(report.flagged()) == {"Vm0", "Vm1", "Vm2", "Vm3"}

    def test_verdict_counts(self, clean_pool):
        report = IntegrityChecker().check_pool(clean_pool)
        for verdict in report.verdicts.values():
            assert verdict.comparisons == 4

    def test_pair_lookup(self, clean_pool):
        report = IntegrityChecker().check_pool(clean_pool)
        pair = report.pair("Vm0", "Vm3")
        assert {pair.vm_a, pair.vm_b} == {"Vm0", "Vm3"}
        with pytest.raises(KeyError):
            report.pair("Vm0", "VmZ")
