"""Tests for cross-view detection and the LDR-decoy attack."""

import pytest

from repro.attacks import LdrDecoyAttack
from repro.cloud import build_testbed
from repro.core import ModChecker, ModuleSearcher, cross_view
from repro.errors import IntrospectionFault


@pytest.fixture
def tb():
    return build_testbed(3, seed=42)


@pytest.fixture
def mc(tb):
    return ModChecker(tb.hypervisor, tb.profile)


class TestCleanCrossView:
    def test_all_confirmed(self, tb, mc):
        report = cross_view(mc.vmi_for("Dom1"))
        assert report.consistent
        assert len(report.confirmed) == len(tb.catalog)
        assert report.carved_only == [] and report.listed_only == []

    def test_summary_format(self, mc):
        report = cross_view(mc.vmi_for("Dom1"))
        assert "10 confirmed" in report.summary()


class TestHiddenView:
    def test_unlinked_module_is_carved_only(self, tb, mc):
        tb.hypervisor.domain("Dom1").kernel.unload_module("ndis.sys")
        mc.vmi_for("Dom1").flush_caches()
        report = cross_view(mc.vmi_for("Dom1"))
        assert not report.consistent
        assert len(report.carved_only) == 1
        assert len(report.confirmed) == len(tb.catalog) - 1


class TestDecoyView:
    def test_decoy_is_listed_only(self, tb, mc):
        LdrDecoyAttack().apply(tb.hypervisor.domain("Dom1").kernel)
        mc.vmi_for("Dom1").flush_caches()
        report = cross_view(mc.vmi_for("Dom1"))
        assert not report.consistent
        assert [e.name for e in report.listed_only] == ["ghost.sys"]
        assert len(report.confirmed) == len(tb.catalog)

    def test_searcher_lists_the_phantom(self, tb, mc):
        LdrDecoyAttack().apply(tb.hypervisor.domain("Dom1").kernel)
        mc.vmi_for("Dom1").flush_caches()
        searcher = ModuleSearcher(mc.vmi_for("Dom1"))
        names = [e.name for e in searcher.list_modules()]
        assert "ghost.sys" in names

    def test_copying_the_phantom_faults_cleanly(self, tb, mc):
        LdrDecoyAttack().apply(tb.hypervisor.domain("Dom1").kernel)
        mc.vmi_for("Dom1").flush_caches()
        searcher = ModuleSearcher(mc.vmi_for("Dom1"))
        with pytest.raises(IntrospectionFault):
            searcher.copy_module("ghost.sys")

    def test_pool_check_skips_phantom(self, tb, mc):
        """A decoy on one VM must not break checking real modules."""
        LdrDecoyAttack().apply(tb.hypervisor.domain("Dom1").kernel)
        assert mc.check_pool("hal.dll").report.all_clean

    def test_decoy_params(self, tb):
        attack = LdrDecoyAttack(decoy_name="fake.sys",
                                decoy_base=0xFBBB_0000)
        result = attack.apply(tb.hypervisor.domain("Dom2").kernel)
        assert result.module_name == "fake.sys"
        assert result.details["decoy_base"] == 0xFBBB_0000


class TestCombinedTampering:
    def test_hidden_and_decoy_both_reported(self, tb, mc):
        kernel = tb.hypervisor.domain("Dom1").kernel
        kernel.unload_module("dummy.sys")
        LdrDecoyAttack().apply(kernel)
        mc.vmi_for("Dom1").flush_caches()
        report = cross_view(mc.vmi_for("Dom1"))
        assert len(report.carved_only) == 1
        assert len(report.listed_only) == 1
        assert len(report.confirmed) == len(tb.catalog) - 1
