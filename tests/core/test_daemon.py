"""Unit tests for the checking daemon and scheduling policies."""

import pytest

from repro.attacks import RuntimeCodePatchAttack
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.core.daemon import (AdaptivePolicy, Alert, AlertLog, CheckDaemon,
                               PriorityPolicy, RoundRobinPolicy)


@pytest.fixture
def tb():
    # 4 VMs so a single infection is exactly localised (with 3, the
    # strict majority rule ties and flags the whole pool).
    return build_testbed(4, seed=42)


@pytest.fixture
def mc(tb):
    return ModChecker(tb.hypervisor, tb.profile)


class TestPolicies:
    MODULES = ["a", "b", "c", "d", "e"]

    def test_round_robin_rotates(self):
        policy = RoundRobinPolicy(per_cycle=2)
        log = AlertLog()
        seen = []
        for cycle in range(5):
            seen += policy.select(cycle, self.MODULES, log)
        assert set(seen) == set(self.MODULES)

    def test_round_robin_per_cycle(self):
        policy = RoundRobinPolicy(per_cycle=3)
        assert len(policy.select(0, self.MODULES, AlertLog())) == 3

    def test_round_robin_small_list(self):
        policy = RoundRobinPolicy(per_cycle=4)
        assert policy.select(0, ["x"], AlertLog()) == ["x"]

    def test_round_robin_invalid(self):
        with pytest.raises(ValueError):
            RoundRobinPolicy(0)

    def test_priority_always_includes_critical(self):
        policy = PriorityPolicy(critical=["a", "c"])
        for cycle in range(4):
            picked = policy.select(cycle, self.MODULES, AlertLog())
            assert picked[0] == "a" and picked[1] == "c"

    def test_adaptive_rechecks_offenders(self):
        policy = AdaptivePolicy(per_cycle=1, cooldown=2)
        log = AlertLog()
        policy.note_outcome("b", alarmed=True)
        assert "b" in policy.select(1, self.MODULES, log)
        policy.note_outcome("b", alarmed=False)
        assert "b" in policy.select(2, self.MODULES, log)
        policy.note_outcome("b", alarmed=False)
        # cooldown exhausted: back to normal rotation
        assert "b" not in policy.select(0, self.MODULES, log)


class TestAlertLog:
    def test_queries(self):
        log = AlertLog()
        log.add(Alert(1.0, "hal.dll", ("Dom2",), (".text",)))
        log.add(Alert(2.0, "http.sys", ("Dom1", "Dom2"), (".text",)))
        assert len(log) == 2
        assert len(log.for_module("hal.dll")) == 1
        assert len(log.for_vm("Dom2")) == 2
        assert len(log.for_vm("Dom9")) == 0

    def test_str(self):
        alert = Alert(1.5, "hal.dll", ("Dom2",), (".text",))
        assert "hal.dll" in str(alert) and "Dom2" in str(alert)


class TestDaemon:
    def test_clean_pool_quiet(self, mc):
        daemon = CheckDaemon(mc, RoundRobinPolicy(per_cycle=5), carve=True)
        log = daemon.run(4)
        assert len(log) == 0
        assert daemon.cycles_run == 4

    def test_cycles_advance_clock(self, tb, mc):
        daemon = CheckDaemon(mc, interval=30.0, carve=False)
        t0 = tb.clock.now
        daemon.run(3)
        assert tb.clock.now >= t0 + 90.0

    def test_infection_alerts_once_discovered(self, tb, mc):
        RuntimeCodePatchAttack().apply(
            tb.hypervisor.domain("Dom2").kernel, tb.catalog["hal.dll"])
        daemon = CheckDaemon(mc, RoundRobinPolicy(per_cycle=10), carve=False)
        alerts = daemon.run_cycle()
        assert len(alerts) == 1
        assert alerts[0].module == "hal.dll"
        assert alerts[0].flagged_vms == ("Dom2",)
        assert ".text" in alerts[0].regions

    def test_hidden_module_alert_via_carving(self, tb, mc):
        tb.hypervisor.domain("Dom1").kernel.unload_module("dummy.sys")
        daemon = CheckDaemon(mc, RoundRobinPolicy(per_cycle=1), carve=True)
        log = daemon.run(3)          # carving rotates over the 3 VMs
        hidden = [a for a in log.alerts if a.kind == "hidden-module"]
        assert len(hidden) >= 1
        assert hidden[0].module == "dummy.sys"
        assert hidden[0].flagged_vms == ("Dom1",)

    def test_adaptive_daemon_watches_offender(self, tb, mc):
        RuntimeCodePatchAttack().apply(
            tb.hypervisor.domain("Dom2").kernel, tb.catalog["hal.dll"])
        policy = AdaptivePolicy(per_cycle=1, cooldown=2)
        daemon = CheckDaemon(mc, policy, carve=False)
        # first cycles rotate until hal.dll is hit, then it sticks
        daemon.run(12)
        hal_alerts = daemon.log.for_module("hal.dll")
        assert len(hal_alerts) >= 3   # re-checked every cycle once seen

    def test_invalid_interval(self, mc):
        with pytest.raises(ValueError):
            CheckDaemon(mc, interval=0)


class TestDaemonCrossView:
    def test_decoy_entry_alert(self, tb, mc):
        from repro.attacks import LdrDecoyAttack
        LdrDecoyAttack().apply(tb.hypervisor.domain("Dom1").kernel)
        daemon = CheckDaemon(mc, RoundRobinPolicy(per_cycle=1), carve=True)
        log = daemon.run(4)          # rotation reaches Dom1 on cycle 0
        decoys = [a for a in log.alerts if a.kind == "decoy-entry"]
        assert decoys
        assert decoys[0].module == "ghost.sys"
        assert decoys[0].flagged_vms == ("Dom1",)


class TestDaemonCarveOnce:
    def test_one_carve_per_cycle(self, tb, mc, monkeypatch):
        # Regression: the daemon used to carve the same guest twice per
        # cycle — once for hidden-module detection, once inside the
        # cross-view decoy check.
        from repro.core.carver import ModuleCarver
        calls = []
        original = ModuleCarver.carve

        def counting_carve(self):
            calls.append(self.vmi.domain.name)
            return original(self)

        monkeypatch.setattr(ModuleCarver, "carve", counting_carve)
        daemon = CheckDaemon(mc, RoundRobinPolicy(), carve=True)
        daemon.run_cycle()
        assert len(calls) == 1
