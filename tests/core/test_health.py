"""Unit tests for the per-VM circuit breaker state machine."""

import pytest

from repro.core.health import (BreakerConfig, BreakerState, CircuitBreaker,
                               HealthRegistry)


class TestBreakerConfig:
    @pytest.mark.parametrize("kwargs", [
        {"fail_threshold": 0},
        {"open_cycles": 0},
        {"probe_successes": 0},
        {"backoff_factor": 0.5},
        {"open_cycles": 8, "max_open_cycles": 4},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BreakerConfig(**kwargs)


class TestCircuitBreaker:
    def test_starts_closed_and_allowed(self):
        b = CircuitBreaker()
        assert b.state is BreakerState.CLOSED
        assert b.allowed

    def test_trips_at_fail_threshold(self):
        b = CircuitBreaker(BreakerConfig(fail_threshold=3, open_cycles=2))
        assert not b.record_failure("x")
        assert not b.record_failure("x")
        assert b.record_failure("x")        # third strike trips
        assert b.state is BreakerState.OPEN
        assert not b.allowed
        assert b.open_left == 2

    def test_success_resets_consecutive_failures(self):
        b = CircuitBreaker(BreakerConfig(fail_threshold=2))
        b.record_failure()
        b.record_success()
        assert not b.record_failure()       # streak restarted
        assert b.state is BreakerState.CLOSED

    def test_open_ignores_further_failures(self):
        b = CircuitBreaker(BreakerConfig(open_cycles=3))
        b.record_failure()
        assert not b.record_failure()       # no double-trip
        assert b.open_left == 3

    def test_cooldown_ticks_into_half_open(self):
        b = CircuitBreaker(BreakerConfig(open_cycles=2))
        b.record_failure()
        b.tick()
        assert b.state is BreakerState.OPEN
        b.tick()
        assert b.state is BreakerState.HALF_OPEN
        assert b.allowed                    # probing: admitted again

    def test_half_open_probe_success_closes(self):
        b = CircuitBreaker(BreakerConfig(open_cycles=1, probe_successes=2))
        b.record_failure()
        b.tick()
        assert not b.record_success()       # 1 of 2 probes
        assert b.record_success()           # closes
        assert b.state is BreakerState.CLOSED
        assert b.last_reason is None

    def test_half_open_failure_reopens_with_backoff(self):
        b = CircuitBreaker(BreakerConfig(open_cycles=2, backoff_factor=2.0,
                                         max_open_cycles=32))
        b.record_failure("first")
        assert b.open_left == 2
        for _ in range(2):
            b.tick()                        # -> HALF_OPEN
        assert b.record_failure("probe died")
        assert b.state is BreakerState.OPEN
        assert b.open_left == 4             # 2 * 2^1
        for _ in range(4):
            b.tick()
        assert b.record_failure("again")
        assert b.open_left == 8             # 2 * 2^2

    def test_backoff_capped_at_max_open_cycles(self):
        b = CircuitBreaker(BreakerConfig(open_cycles=2, backoff_factor=10.0,
                                         max_open_cycles=5))
        b.record_failure()
        for _ in range(2):
            b.tick()
        b.record_failure()
        assert b.open_left == 5             # min(2*10, 5)

    def test_close_resets_backoff_level(self):
        b = CircuitBreaker(BreakerConfig(open_cycles=2, backoff_factor=2.0))
        b.record_failure()
        for _ in range(2):
            b.tick()
        b.record_failure()                  # re-trip: level 1, cooldown 4
        for _ in range(4):
            b.tick()
        b.record_success()                  # closes, level resets
        b.record_failure()
        assert b.open_left == 2             # base cooldown again

    def test_transition_counters(self):
        b = CircuitBreaker(BreakerConfig(open_cycles=1))
        b.record_failure()
        b.tick()
        b.record_success()
        assert b.transitions == {"closed": 1, "open": 1, "half_open": 1}


class TestHealthRegistry:
    def test_unknown_vm_is_allowed(self):
        reg = HealthRegistry()
        assert reg.allowed("Ghost")
        assert reg.open_vms() == []

    def test_per_vm_isolation(self):
        reg = HealthRegistry(BreakerConfig(open_cycles=2))
        reg.record_failure("Dom1", "unreachable")
        assert not reg.allowed("Dom1")
        assert reg.allowed("Dom2")
        assert reg.open_vms() == ["Dom1"]

    def test_tick_advances_all_breakers(self):
        reg = HealthRegistry(BreakerConfig(open_cycles=1))
        reg.record_failure("Dom1")
        reg.record_failure("Dom2")
        reg.tick()
        assert reg.states() == {"Dom1": BreakerState.HALF_OPEN,
                                "Dom2": BreakerState.HALF_OPEN}

    def test_evict_forgets_history(self):
        reg = HealthRegistry(BreakerConfig(open_cycles=8))
        reg.record_failure("Dom1")
        reg.evict("Dom1")
        assert reg.allowed("Dom1")          # fresh breaker on return
        assert reg.states() == {}

    def test_transition_counts_sorted_per_vm(self):
        reg = HealthRegistry(BreakerConfig(open_cycles=1))
        reg.record_failure("B")
        reg.record_failure("A")
        counts = reg.transition_counts()
        assert list(counts) == ["A", "B"]
        assert counts["A"]["open"] == 1
