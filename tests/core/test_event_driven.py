"""Event-driven monitoring: protections, traps, fallbacks, accounting.

The third checking mode (``event_driven=True``): a committed manifest
write-protects its pages plus the LDR guard frames, and later
validations check only what trapped — O(writes) instead of O(pages).
These tests cover arming, targeted re-checks, the full fallback
taxonomy (exhausted / paranoia / lifecycle / unprotectable), guard
handling, the daemon subscription hook, and the tail-masking commit
rule that lets an image ending mid-page earn a manifest at all.
"""

import dataclasses

import pytest

from repro.attacks.memory import RuntimeCodePatchAttack
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.hypervisor.xen import Hypervisor
from repro.mem.physical import PAGE_SIZE
from repro.obs import make_observability
from repro.pe.structures import FileHeader, OptionalHeader
from repro.vmi import OSProfile

MODULE = "hal.dll"


@pytest.fixture
def warm(clean_testbed):
    """An event-driven checker with protections armed for hal.dll."""
    tb = clean_testbed
    mc = ModChecker(tb.hypervisor, tb.profile, event_driven=True)
    assert mc.check_pool(MODULE).report.all_clean
    return tb, mc


def _image_va(tb, vm, page=1, offset=5):
    mod = tb.hypervisor.domain(vm).kernel.module(MODULE)
    return mod.base + page * PAGE_SIZE + offset


class TestArming:
    def test_event_driven_implies_incremental(self, clean_testbed):
        tb = clean_testbed
        mc = ModChecker(tb.hypervisor, tb.profile, event_driven=True)
        assert mc.incremental and mc.event_driven

    def test_first_round_arms_every_vm(self, warm):
        tb, mc = warm
        assert sorted(vm for vm, _ in mc._protections) == \
            sorted(tb.vm_names)
        n_pages = -(-tb.hypervisor.domain(tb.vm_names[0]).kernel
                    .module(MODULE).size_of_image // PAGE_SIZE)
        for vm in tb.vm_names:
            # image pages + entry guard + two neighbour guards
            assert len(tb.hypervisor.domain(vm).protected_frames) \
                >= n_pages

    def test_steady_state_is_one_empty_drain(self, warm):
        tb, mc = warm
        checksummed = {vm: vmi.stats.pages_checksummed
                       for vm, vmi in mc._vmis.items()}
        out = mc.check_pool(MODULE)
        assert out.report.all_clean
        assert mc.trap_validations == len(tb.vm_names)
        assert mc.trap_pages_checked == 0
        for vm, vmi in mc._vmis.items():
            assert vmi.stats.pages_checksummed == checksummed[vm]

    def test_steady_state_cheaper_than_incremental_sweep(self,
                                                         clean_testbed):
        tb = clean_testbed
        sweep = ModChecker(tb.hypervisor, tb.profile, incremental=True)
        event = ModChecker(tb.hypervisor, tb.profile, event_driven=True)
        sweep.check_pool(MODULE)
        event.check_pool(MODULE)
        with tb.clock.span() as s:
            sweep.check_pool(MODULE)
        with tb.clock.span() as e:
            event.check_pool(MODULE)
        assert e.elapsed < s.elapsed

    def test_invalidate_disarms_everything(self, warm):
        tb, mc = warm
        mc.invalidate_manifests(reason="test-sweep")
        assert mc._protections == {}
        for vm in tb.vm_names:
            assert tb.hypervisor.domain(vm).protected_frames == {}


class TestTargetedRecheck:
    def test_dirty_page_rechecked_not_swept(self, warm):
        tb, mc = warm
        vm = tb.vm_names[0]
        kernel = tb.hypervisor.domain(vm).kernel
        mod = kernel.module(MODULE)
        # rewrite one byte with its own value: content unchanged, but
        # the write still traps and must be re-digested
        va = mod.base + 2 * PAGE_SIZE + 7
        kernel.aspace.write(va, kernel.aspace.read(va, 1))
        assert mc.check_pool(MODULE).report.all_clean
        assert mc.trap_pages_checked == 1
        assert mc.manifests.stats.invalidations.get("page-delta") is None

    def test_tamper_caught_via_trap(self, warm, catalog):
        tb, mc = warm
        victim = tb.vm_names[1]
        RuntimeCodePatchAttack().apply(
            tb.hypervisor.domain(victim).kernel, catalog[MODULE])
        report = mc.check_pool(MODULE).report
        assert sorted(report.flagged()) == [victim]
        assert mc.manifests.stats.invalidations.get("page-delta") == 1

    def test_unrelated_writes_do_not_trap(self, warm):
        tb, mc = warm
        vm = tb.vm_names[0]
        kernel = tb.hypervisor.domain(vm).kernel
        other = kernel.module("ndis.sys")      # not under protection
        kernel.aspace.write(other.base + 64, b"\x90" * 8)
        assert mc.check_pool(MODULE).report.all_clean
        assert mc.trap_pages_checked == 0

    def test_pending_trap_modules_names_dirty_work(self, warm):
        tb, mc = warm
        assert mc.pending_trap_modules(tb.vm_names) == []
        vm = tb.vm_names[2]
        tb.hypervisor.domain(vm).kernel.aspace.write(
            _image_va(tb, vm), b"\x90")
        assert mc.pending_trap_modules(tb.vm_names) == [MODULE]
        # routing persisted on the record: the next check still sees it
        assert mc.check_pool(MODULE).report.all_clean
        assert mc.trap_pages_checked == 1

    def test_pending_trap_modules_off_path(self, clean_testbed):
        tb = clean_testbed
        mc = ModChecker(tb.hypervisor, tb.profile, incremental=True)
        assert mc.pending_trap_modules(tb.vm_names) == []


class TestFallbacks:
    def test_paranoia_resweeps_periodically(self, clean_testbed):
        tb = clean_testbed
        mc = ModChecker(tb.hypervisor, tb.profile, event_driven=True,
                        paranoia_every=2)
        for _ in range(4):
            assert mc.check_pool(MODULE).report.all_clean
        # validations 2 per VM by round 3: one paranoia sweep each
        assert mc.trap_fallbacks.get("paranoia", 0) >= len(tb.vm_names)

    def test_paranoia_disabled(self, clean_testbed):
        tb = clean_testbed
        mc = ModChecker(tb.hypervisor, tb.profile, event_driven=True,
                        paranoia_every=None)
        for _ in range(4):
            mc.check_pool(MODULE)
        assert mc.trap_fallbacks.get("paranoia") is None

    def test_ring_overflow_falls_back_exhausted(self, catalog):
        hv = Hypervisor(trap_capacity=1)
        for i in range(1, 4):
            hv.create_guest(f"Dom{i}", catalog, seed=i)
        profile = OSProfile.from_guest(hv.domain("Dom1").kernel)
        mc = ModChecker(hv, profile, event_driven=True)
        assert mc.check_pool(MODULE).report.all_clean
        kernel = hv.domain("Dom1").kernel
        mod = kernel.module(MODULE)
        for page in (1, 2):                    # second frame overflows
            va = mod.base + page * PAGE_SIZE
            kernel.aspace.write(va, kernel.aspace.read(va, 1))
        assert mc.check_pool(MODULE).report.all_clean
        assert mc.trap_fallbacks.get("exhausted") == 1
        # the sweep cleared the slate: next round is steady-state again
        assert mc.check_pool(MODULE).report.all_clean
        assert mc.trap_fallbacks.get("exhausted") == 1

    def test_lifecycle_drop_falls_back_and_rearms(self, warm):
        tb, mc = warm
        vm = tb.vm_names[0]
        tb.hypervisor.migrate_start(vm)
        tb.hypervisor.migrate_finish(vm)     # epoch bump, no reboot
        assert tb.hypervisor.domain(vm).protected_frames == {}
        assert mc.check_pool(MODULE).report.all_clean
        assert mc.trap_fallbacks.get("lifecycle") == 1
        # re-armed against the new epoch
        rec = mc._protections[(vm, MODULE)]
        assert rec.epoch == tb.hypervisor.domain(vm).protection_epoch
        assert tb.hypervisor.domain(vm).protected_frames

    def test_reboot_drops_protection_with_manifest(self, warm):
        tb, mc = warm
        vm = tb.vm_names[0]
        tb.hypervisor.reboot(vm)
        assert mc.check_pool(MODULE).report.all_clean
        # generation miss dropped the armed record before re-arming
        rec = mc._protections[(vm, MODULE)]
        assert rec.boot_generation == \
            tb.hypervisor.domain(vm).boot_generation

    def test_unprotectable_pages_stay_on_sweep_path(self, catalog):
        hv = Hypervisor(protect_limit=4)       # too small for the image
        for i in range(1, 4):
            hv.create_guest(f"Dom{i}", catalog, seed=i)
        profile = OSProfile.from_guest(hv.domain("Dom1").kernel)
        mc = ModChecker(hv, profile, event_driven=True)
        assert mc.check_pool(MODULE).report.all_clean
        assert mc.check_pool(MODULE).report.all_clean
        assert mc.trap_fallbacks.get("unprotectable", 0) >= 3
        assert mc.trap_pages_checked > 0       # unarmed pages re-swept


class TestGuards:
    def test_benign_guard_write_reverifies_entry(self, warm):
        tb, mc = warm
        vm = tb.vm_names[0]
        kernel = tb.hypervisor.domain(vm).kernel
        entry = kernel.module(MODULE).ldr_entry_va
        # scribble a field verify_cached_entry does not read (0x30 is
        # past FLINK/BLINK/DllBase/SizeOfImage) — guard fires, the
        # verify passes, the manifest survives
        kernel.aspace.write(entry + 0x30, b"\x01")
        assert mc.check_pool(MODULE).report.all_clean
        assert mc.manifests.stats.invalidations.get("entry-moved") is None
        assert not mc._protections[(vm, MODULE)].guard_dirty

    def test_dkom_unlink_trips_guard_then_entry_check(self, warm):
        tb, mc = warm
        victim = tb.vm_names[0]
        tb.hypervisor.domain(victim).kernel.unload_module(MODULE)
        report = mc.check_pool(MODULE).report
        assert victim not in report.verdicts     # not loaded -> no vote
        assert mc.manifests.stats.invalidations.get("entry-moved") == 1
        assert (victim, MODULE) not in mc._protections

    def test_snapshot_revert_floods_and_resweeps(self, warm):
        tb, mc = warm
        vm = tb.vm_names[0]
        tb.hypervisor.snapshot(vm)
        tb.hypervisor.revert(vm)
        assert mc.check_pool(MODULE).report.all_clean
        # every protected frame trapped: the whole image re-digested
        n_pages = -(-tb.hypervisor.domain(vm).kernel
                    .module(MODULE).size_of_image // PAGE_SIZE)
        assert mc.trap_pages_checked >= n_pages


class TestParallelParity:
    def test_parallel_event_driven_same_verdicts(self, clean_testbed,
                                                 catalog):
        from repro.core.parallel import ParallelModChecker
        tb = clean_testbed
        mc = ParallelModChecker(tb.hypervisor, tb.profile, threads=4,
                                event_driven=True)
        assert mc.event_driven and mc.incremental
        assert mc.check_pool(MODULE).report.all_clean
        assert mc.check_pool(MODULE).report.all_clean
        assert mc.trap_validations == len(tb.vm_names)
        victim = tb.vm_names[1]
        RuntimeCodePatchAttack().apply(
            tb.hypervisor.domain(victim).kernel, catalog[MODULE])
        r3 = mc.check_pool(MODULE).report
        assert sorted(r3.flagged()) == [victim]

    def test_parallel_trap_accounting_matches_sequential(self,
                                                         clean_testbed):
        from repro.core.parallel import ParallelModChecker
        tb = clean_testbed
        seq = ModChecker(tb.hypervisor, tb.profile, event_driven=True)
        for _ in range(3):
            seq.check_pool(MODULE)
        par = ParallelModChecker(tb.hypervisor, tb.profile, threads=4,
                                 event_driven=True)
        for _ in range(3):
            par.check_pool(MODULE)
        assert par.trap_validations == seq.trap_validations
        assert par.trap_pages_checked == seq.trap_pages_checked
        assert par.trap_fallbacks == seq.trap_fallbacks


class TestObservability:
    def test_trap_events_emitted(self, clean_testbed):
        tb = clean_testbed
        obs = make_observability(tb.clock)
        mc = ModChecker(tb.hypervisor, tb.profile, event_driven=True,
                        obs=obs)
        mc.check_pool(MODULE)
        assert len(obs.events.by_name("trap.protected")) == \
            len(tb.vm_names)
        vm = tb.vm_names[0]
        tb.hypervisor.domain(vm).kernel.aspace.write(
            _image_va(tb, vm), b"\x90")
        mc.check_pool(MODULE)
        delivered = obs.events.by_name("trap.delivered")
        assert len(delivered) == 1
        assert delivered[0].attrs["vm"] == vm
        assert delivered[0].attrs["traps"] == 1

    def test_fallback_event_carries_reason(self, clean_testbed):
        tb = clean_testbed
        obs = make_observability(tb.clock)
        mc = ModChecker(tb.hypervisor, tb.profile, event_driven=True,
                        paranoia_every=2, obs=obs)
        for _ in range(3):
            mc.check_pool(MODULE)
        evs = obs.events.by_name("trap.fallback")
        assert evs and all(e.attrs["reason"] == "paranoia" for e in evs)

    def test_trap_metrics_published(self, clean_testbed):
        tb = clean_testbed
        obs = make_observability(tb.clock)
        mc = ModChecker(tb.hypervisor, tb.profile, event_driven=True,
                        obs=obs)
        mc.check_pool(MODULE)
        mc.check_pool(MODULE)
        metrics = obs.metrics
        assert metrics.counter("modchecker_trap_validations_total") \
            .value() == len(tb.vm_names)
        assert metrics.gauge("modchecker_protected_frames").value() > 0
        assert metrics.counter("modchecker_traps_total") \
            .value(outcome="drained") >= 0


class TestTailMasking:
    """Regression: an image ending mid-page used to be refused a
    manifest (commit) and, worse, the sweep hashed co-resident bytes
    past its tail, so neighbours could spuriously invalidate it."""

    @pytest.fixture
    def unaligned_pool(self, catalog):
        patched = dict(catalog)
        bp = patched["dummy.sys"]
        opt_off = bp.e_lfanew + 4 + FileHeader.SIZE
        opt = OptionalHeader.unpack(bp.file_bytes[opt_off:])
        new_opt = dataclasses.replace(opt,
                                      size_of_image=opt.size_of_image - 16)
        fb = bytearray(bp.file_bytes)
        fb[opt_off:opt_off + OptionalHeader.SIZE] = new_opt.pack()
        patched["dummy.sys"] = dataclasses.replace(
            bp, file_bytes=bytes(fb), optional_header=new_opt)
        hv = Hypervisor()
        for i in range(1, 4):
            hv.create_guest(f"Dom{i}", patched, seed=i)
        profile = OSProfile.from_guest(hv.domain("Dom1").kernel)
        return hv, profile

    def _mod(self, hv, vm="Dom1"):
        return hv.domain(vm).kernel.module("dummy.sys")

    def test_unaligned_image_earns_a_manifest(self, unaligned_pool):
        hv, profile = unaligned_pool
        assert self._mod(hv).size_of_image % PAGE_SIZE != 0
        mc = ModChecker(hv, profile, incremental=True)
        assert mc.check_pool("dummy.sys").report.all_clean
        assert mc.check_pool("dummy.sys").report.all_clean
        assert mc.manifests.stats.hits == 3

    def test_beyond_tail_scribble_keeps_manifest_hitting(self,
                                                         unaligned_pool):
        hv, profile = unaligned_pool
        mc = ModChecker(hv, profile, incremental=True)
        mc.check_pool("dummy.sys")
        for vm in ("Dom1", "Dom2", "Dom3"):
            mod = self._mod(hv, vm)
            hv.domain(vm).kernel.aspace.write(
                mod.base + mod.size_of_image, b"\xEE" * 16)
        assert mc.check_pool("dummy.sys").report.all_clean
        assert mc.manifests.stats.hits == 3
        assert mc.manifests.stats.invalidations.get("page-delta") is None

    def test_in_range_tail_write_still_invalidates(self, unaligned_pool):
        hv, profile = unaligned_pool
        mc = ModChecker(hv, profile, incremental=True)
        mc.check_pool("dummy.sys")
        mod = self._mod(hv, "Dom2")
        hv.domain("Dom2").kernel.aspace.write(
            mod.base + mod.size_of_image - 4, b"\xBB" * 4)
        mc.check_pool("dummy.sys")
        assert mc.manifests.stats.invalidations.get("page-delta") == 1

    def test_event_driven_handles_unaligned_tail(self, unaligned_pool):
        hv, profile = unaligned_pool
        mc = ModChecker(hv, profile, event_driven=True)
        assert mc.check_pool("dummy.sys").report.all_clean
        # beyond-tail scribble traps (same frame) but the masked
        # re-digest must not invalidate
        mod = self._mod(hv, "Dom1")
        hv.domain("Dom1").kernel.aspace.write(
            mod.base + mod.size_of_image, b"\xEE" * 16)
        assert mc.check_pool("dummy.sys").report.all_clean
        assert mc.trap_pages_checked == 1
        assert mc.manifests.stats.invalidations.get("page-delta") is None
