"""The incremental check pipeline: manifests, replay, invalidation.

Covers the full invalidation taxonomy (reboot generation, TTL, page
delta, DKOM entry moves, membership, breaker trips, migrations,
flagged verdicts), the commit-on-clean-only rule, pair replay
soundness, and sequential/parallel parity.
"""

import pytest

from repro.attacks.memory import RuntimeCodePatchAttack
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.core.parallel import ParallelModChecker

MODULE = "hal.dll"


@pytest.fixture
def warm_checker(clean_testbed):
    """An incremental checker with manifests committed for hal.dll."""
    tb = clean_testbed
    mc = ModChecker(tb.hypervisor, tb.profile, incremental=True)
    report = mc.check_pool(MODULE).report
    assert report.all_clean
    return tb, mc


class TestFastPath:
    def test_second_round_hits_all_manifests(self, warm_checker):
        tb, mc = warm_checker
        out = mc.check_pool(MODULE)
        assert out.report.all_clean
        assert mc.manifests.stats.hits == len(tb.vm_names)
        assert mc.manifests.stats.misses == {"absent": len(tb.vm_names)}

    def test_fast_path_skips_copy_and_parse(self, warm_checker):
        tb, mc = warm_checker
        mapped_before = {vm: vmi.stats.pages_mapped
                         for vm, vmi in mc._vmis.items()}
        mc.check_pool(MODULE)
        for vm, vmi in mc._vmis.items():
            # sweep checksums pages hypervisor-side; the image pages
            # are never foreign-mapped again
            assert vmi.stats.pages_checksummed > 0
            delta = vmi.stats.pages_mapped - mapped_before[vm]
            assert delta * 4096 < 0x4000  # page-table walks only

    def test_fast_round_at_least_3x_cheaper(self, warm_checker):
        tb, mc = warm_checker
        with tb.clock.span() as cold:
            # fresh checker on the same pool = the full-cost baseline
            ModChecker(tb.hypervisor, tb.profile).check_pool(MODULE)
        with tb.clock.span() as warm:
            mc.check_pool(MODULE)
        assert cold.elapsed >= 3.0 * warm.elapsed

    def test_pair_replays_served(self, warm_checker):
        tb, mc = warm_checker
        t = len(tb.vm_names)
        mc.check_pool(MODULE)
        assert mc.pair_replays == t * (t - 1) // 2

    def test_off_by_default(self, clean_testbed):
        tb = clean_testbed
        mc = ModChecker(tb.hypervisor, tb.profile)
        mc.check_pool(MODULE)
        mc.check_pool(MODULE)
        assert not mc.incremental
        assert len(mc.manifests) == 0
        assert mc.pair_replays == 0


class TestInvalidation:
    def test_reboot_bumps_generation(self, warm_checker):
        tb, mc = warm_checker
        victim = tb.vm_names[0]
        tb.hypervisor.reboot(victim)
        report = mc.check_pool(MODULE).report
        assert report.all_clean
        assert mc.manifests.stats.misses.get("generation") == 1

    def test_ttl_forces_full_recheck(self, clean_testbed):
        tb = clean_testbed
        mc = ModChecker(tb.hypervisor, tb.profile, incremental=True,
                        recheck_ttl=1000.0)
        mc.check_pool(MODULE)
        tb.clock.advance(999.0)
        mc.check_pool(MODULE)           # still inside the TTL
        assert mc.manifests.stats.misses.get("ttl") is None
        tb.clock.advance(2.0)
        mc.check_pool(MODULE)           # expired: full path again
        assert mc.manifests.stats.misses.get("ttl") == len(tb.vm_names)

    def test_sweep_hits_do_not_refresh_ttl(self, clean_testbed):
        """verified_at marks the last FULL verification; manifest hits
        must not push the TTL horizon forward."""
        tb = clean_testbed
        mc = ModChecker(tb.hypervisor, tb.profile, incremental=True,
                        recheck_ttl=1000.0)
        mc.check_pool(MODULE)
        for _ in range(4):
            tb.clock.advance(300.0)
            mc.check_pool(MODULE)
        # 1200s of sweep hits elapsed: the TTL must have fired once
        assert mc.manifests.stats.misses.get("ttl") == len(tb.vm_names)

    def test_page_delta_detected_and_flagged(self, warm_checker, catalog):
        tb, mc = warm_checker
        victim = tb.vm_names[1]
        RuntimeCodePatchAttack().apply(tb.hypervisor.domain(victim).kernel,
                                       catalog[MODULE])
        report = mc.check_pool(MODULE).report
        assert sorted(report.flagged()) == [victim]
        inv = mc.manifests.stats.invalidations
        assert inv.get("page-delta") == 1
        # the flagged VM keeps failing the vote and never re-earns a
        # manifest; everyone else keeps their fast path
        report = mc.check_pool(MODULE).report
        assert sorted(report.flagged()) == [victim]
        assert (victim, MODULE) not in mc.manifests._entries

    def test_dkom_unlink_caught_by_entry_check(self, warm_checker):
        """A DKOM unlink leaves the node intact; the neighbour check
        must still notice and route the VM through the full walk."""
        tb, mc = warm_checker
        victim = tb.vm_names[0]
        tb.hypervisor.domain(victim).kernel.unload_module(MODULE)
        report = mc.check_pool(MODULE).report
        assert victim not in report.verdicts     # not loaded -> no vote
        assert mc.manifests.stats.invalidations.get("entry-moved") == 1

    def test_admit_evict_drop_manifests(self, warm_checker):
        tb, mc = warm_checker
        victim = tb.vm_names[0]
        mc.evict_vm(victim)
        assert mc.manifests.stats.invalidations.get("evict") == 1
        mc.check_pool(MODULE)       # victim re-earns its manifest
        mc.admit_vm(victim)
        assert mc.manifests.stats.invalidations.get("admit") == 1

    def test_public_invalidate_emits_event(self, clean_testbed):
        from repro.obs import make_observability
        tb = clean_testbed
        obs = make_observability(tb.clock)
        mc = ModChecker(tb.hypervisor, tb.profile, incremental=True,
                        obs=obs)
        mc.check_pool(MODULE)
        removed = mc.invalidate_manifests(reason="test-sweep")
        assert removed == len(tb.vm_names)
        evs = obs.events.by_name("manifest.invalidated")
        assert len(evs) == 1
        assert evs[0].attrs == {"vm": "*", "module": "*",
                                "reason": "test-sweep",
                                "entries": len(tb.vm_names)}
        # empty store: no second event
        assert mc.invalidate_manifests(reason="test-sweep") == 0
        assert len(obs.events.by_name("manifest.invalidated")) == 1


class TestDaemonWiring:
    def test_migrate_finish_invalidates(self, clean_testbed):
        from repro.core.daemon import CheckDaemon

        class OneMigration:
            """Minimal chaos stand-in: migrate Dom1, then nothing."""
            def __init__(self, hv, vm):
                self.hv, self.vm = hv, vm
                self.fired = False

            def step(self):
                from repro.cloud.chaos import ChaosEvent
                if self.fired:
                    return []
                self.fired = True
                now = self.hv.clock.now
                self.hv.migrate_start(self.vm)
                self.hv.migrate_finish(self.vm)
                return [ChaosEvent(now, "migrate-start", self.vm),
                        ChaosEvent(now, "migrate-finish", self.vm)]

        tb = clean_testbed
        mc = ModChecker(tb.hypervisor, tb.profile, incremental=True)
        daemon = CheckDaemon(mc)
        daemon.run_cycle()          # warm: manifests committed
        daemon.chaos = OneMigration(tb.hypervisor, tb.vm_names[0])
        daemon.run_cycle()
        assert mc.manifests.stats.invalidations.get("migration", 0) >= 1

    def test_breaker_trip_invalidates(self, clean_testbed):
        from repro.core.daemon import CheckDaemon
        tb = clean_testbed
        mc = ModChecker(tb.hypervisor, tb.profile, incremental=True)
        daemon = CheckDaemon(mc)
        daemon.run_cycle()
        victim = tb.vm_names[0]
        before = mc.manifests.stats.invalidations.get("breaker", 0)
        tripped = False
        for _ in range(10):     # default fail_threshold is small
            daemon._trip_vm(victim, "forced failure", [])
            if mc.manifests.stats.invalidations.get("breaker", 0) > before:
                tripped = True
                break
        assert tripped


class TestParallelParity:
    def test_parallel_fast_path_and_same_verdicts(self, clean_testbed,
                                                  catalog):
        tb = clean_testbed
        mc = ParallelModChecker(tb.hypervisor, tb.profile, threads=4,
                                incremental=True)
        r1 = mc.check_pool(MODULE).report
        assert r1.all_clean
        r2 = mc.check_pool(MODULE).report
        assert r2.all_clean
        assert mc.manifests.stats.hits == len(tb.vm_names)
        t = len(tb.vm_names)
        assert mc.pair_replays == t * (t - 1) // 2
        victim = tb.vm_names[1]
        RuntimeCodePatchAttack().apply(tb.hypervisor.domain(victim).kernel,
                                       catalog[MODULE])
        r3 = mc.check_pool(MODULE).report
        assert sorted(r3.flagged()) == [victim]

    def test_parallel_warm_round_is_cheaper(self, clean_testbed):
        tb = clean_testbed
        mc = ParallelModChecker(tb.hypervisor, tb.profile, threads=4,
                                incremental=True)
        with tb.clock.span() as cold:
            mc.check_pool(MODULE)
        with tb.clock.span() as warm:
            mc.check_pool(MODULE)
        assert warm.elapsed < cold.elapsed


class TestCommitRules:
    def test_manifest_not_committed_for_flagged_vm(self, clean_testbed,
                                                   catalog):
        tb = clean_testbed
        victim = tb.vm_names[0]
        RuntimeCodePatchAttack().apply(tb.hypervisor.domain(victim).kernel,
                                       catalog[MODULE])
        mc = ModChecker(tb.hypervisor, tb.profile, incremental=True)
        report = mc.check_pool(MODULE).report
        assert sorted(report.flagged()) == [victim]
        assert (victim, MODULE) not in mc.manifests._entries
        for vm in tb.vm_names:
            if vm != victim:
                assert (vm, MODULE) in mc.manifests._entries

    def test_replay_requires_both_keys(self, warm_checker, catalog):
        """A pair where one side re-acquired must be recomputed, not
        replayed against the stale comparison."""
        tb, mc = warm_checker
        victim = tb.vm_names[1]
        RuntimeCodePatchAttack().apply(tb.hypervisor.domain(victim).kernel,
                                       catalog[MODULE])
        replays_before = mc.pair_replays
        report = mc.check_pool(MODULE).report
        t = len(tb.vm_names)
        # only pairs not involving the tampered VM replay
        assert (mc.pair_replays - replays_before
                == (t - 1) * (t - 2) // 2)
        assert sorted(report.flagged()) == [victim]
