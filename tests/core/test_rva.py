"""Unit + property tests for Algorithm 2 and its variants.

The ground-truth generator builds a synthetic "section" containing
filler bytes plus 32-bit address slots, then produces two relocated
copies at different bases — exactly what the loader hands the checker.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rva import (ADJUSTERS, adjust_rva_faithful, adjust_rva_robust,
                            adjust_rva_vectorized, first_differing_base_byte)


def make_pair(base1, base2, *, size=256, slots=(16, 64, 200), rvas=None,
              filler=0x90):
    """Two relocated copies of one synthetic section."""
    rvas = rvas or [0x120, 0x340, 0x88]
    canonical = bytearray([filler]) * size
    canonical = bytearray([filler] * size)
    for slot, rva in zip(slots, rvas):
        struct.pack_into("<I", canonical, slot, rva)
    copy1, copy2 = bytearray(canonical), bytearray(canonical)
    for slot, rva in zip(slots, rvas):
        struct.pack_into("<I", copy1, slot, (rva + base1) & 0xFFFFFFFF)
        struct.pack_into("<I", copy2, slot, (rva + base2) & 0xFFFFFFFF)
    return bytes(canonical), bytes(copy1), bytes(copy2)


BASES = (0xF7010000, 0xF70B5000)


class TestFirstDifferingByte:
    def test_identical(self):
        assert first_differing_base_byte(0x1000, 0x1000) is None

    def test_little_endian_order(self):
        # bases differing only in bits 16-23 differ at byte index 2
        assert first_differing_base_byte(0xF7010000, 0xF70B0000) == 2

    def test_byte1(self):
        assert first_differing_base_byte(0xF7011000, 0xF7012000) == 1

    def test_paper_example_shape(self):
        # Fig. 4's bases: differ from the second byte on.
        assert first_differing_base_byte(0x0020CCF8, 0x00C0D0F8) in (0, 1, 2, 3)


@pytest.mark.parametrize("mode", sorted(ADJUSTERS))
class TestCleanPair:
    def test_recovers_canonical_content(self, mode):
        canonical, c1, c2 = make_pair(*BASES)
        adj1, adj2, stats = ADJUSTERS[mode](c1, BASES[0], c2, BASES[1])
        assert adj1 == adj2 == canonical
        assert stats.replaced == 3
        assert stats.unresolved == 0
        assert stats.clean

    def test_identical_bases_noop(self, mode):
        _, c1, _ = make_pair(*BASES)
        adj1, adj2, stats = ADJUSTERS[mode](c1, BASES[0], c1, BASES[0])
        assert adj1 == adj2 == c1
        assert stats.replaced == 0

    def test_no_slots_at_all(self, mode):
        data = bytes(128)
        adj1, adj2, stats = ADJUSTERS[mode](data, *[BASES[0], data, BASES[1]])
        assert adj1 == adj2 == data
        assert stats.windows == 0

    def test_slot_at_start(self, mode):
        canonical, c1, c2 = make_pair(*BASES, slots=(0,), rvas=[0x50])
        adj1, adj2, stats = ADJUSTERS[mode](c1, BASES[0], c2, BASES[1])
        assert adj1 == adj2 == canonical

    def test_slot_at_end(self, mode):
        canonical, c1, c2 = make_pair(*BASES, size=64, slots=(60,),
                                      rvas=[0x10])
        adj1, adj2, stats = ADJUSTERS[mode](c1, BASES[0], c2, BASES[1])
        assert adj1 == adj2 == canonical

    def test_adjacent_slots(self, mode):
        canonical, c1, c2 = make_pair(*BASES, slots=(16, 20, 24),
                                      rvas=[0x100, 0x200, 0x300])
        adj1, adj2, stats = ADJUSTERS[mode](c1, BASES[0], c2, BASES[1])
        assert adj1 == adj2 == canonical
        assert stats.replaced == 3

    def test_length_mismatch_rejected(self, mode):
        with pytest.raises(ValueError):
            ADJUSTERS[mode](b"ab", BASES[0], b"abc", BASES[1])


@pytest.mark.parametrize("mode", sorted(ADJUSTERS))
class TestTamperedPair:
    def test_tamper_leaves_unresolved_and_mismatch(self, mode):
        _, c1, c2 = make_pair(*BASES)
        tampered = bytearray(c1)
        tampered[100] ^= 0xFF                       # not a relocation site
        adj1, adj2, stats = ADJUSTERS[mode](bytes(tampered), BASES[0],
                                            c2, BASES[1])
        assert adj1 != adj2
        assert stats.unresolved >= 1

    def test_tamper_near_slot_still_detected(self, mode):
        _, c1, c2 = make_pair(*BASES, slots=(16,), rvas=[0x100])
        tampered = bytearray(c1)
        tampered[21] ^= 0x41                        # right after the slot
        adj1, adj2, _ = ADJUSTERS[mode](bytes(tampered), BASES[0],
                                        c2, BASES[1])
        assert adj1 != adj2

    def test_jmp_insertion_detected(self, mode):
        """E1-style: equal-length opcode rewrite inside the section."""
        _, c1, c2 = make_pair(*BASES)
        tampered = bytearray(c1)
        tampered[40:43] = b"\x83\xE9\x01"
        adj1, adj2, _ = ADJUSTERS[mode](bytes(tampered), BASES[0],
                                        c2, BASES[1])
        assert adj1 != adj2


class TestFaithfulSpecifics:
    def test_requires_base_byte_difference(self):
        # Bases equal -> algorithm 2's guard (IsDifferenceExist) trips
        # and nothing is replaced even if content differs.
        _, c1, c2 = make_pair(BASES[0], BASES[0])
        tampered = bytearray(c2)
        tampered[3] ^= 1
        adj1, adj2, stats = adjust_rva_faithful(c1, BASES[0],
                                                bytes(tampered), BASES[0])
        assert stats.replaced == 0
        assert adj1 != adj2

    def test_carry_does_not_shift_first_difference(self):
        """Sums first differ exactly at the bases' first differing byte
        (bytes below it are equal, so carries into it are equal), so the
        paper's offset heuristic is sound for genuine relocation slots
        even when the addition carries."""
        base1, base2 = 0xF7014000, 0xF701C000      # differ at byte 1
        rva = 0x4000                               # carries out of byte 1
        c1, c2 = bytearray(16), bytearray(16)
        struct.pack_into("<I", c1, 4, (base1 + rva) & 0xFFFFFFFF)
        struct.pack_into("<I", c2, 4, (base2 + rva) & 0xFFFFFFFF)
        adj1, adj2, stats = adjust_rva_faithful(bytes(c1), base1,
                                                bytes(c2), base2)
        assert adj1 == adj2
        assert stats.replaced == 1

    def test_implausible_rva_left_unresolved(self):
        """RVAs beyond max_rva are treated as tampering, not relocation."""
        base1, base2 = BASES
        rva = 0x00FF0000                           # ~16 MiB: implausible
        c1, c2 = bytearray(16), bytearray(16)
        struct.pack_into("<I", c1, 4, (base1 + rva) & 0xFFFFFFFF)
        struct.pack_into("<I", c2, 4, (base2 + rva) & 0xFFFFFFFF)
        for fn in ADJUSTERS.values():
            adj1, adj2, stats = fn(bytes(c1), base1, bytes(c2), base2,
                                   max_rva=0x100000)
            assert stats.unresolved >= 1
            assert adj1 != adj2
        # with a generous bound the same pair resolves
        adj1, adj2, stats = adjust_rva_robust(bytes(c1), base1,
                                              bytes(c2), base2,
                                              max_rva=1 << 25)
        assert adj1 == adj2 and stats.replaced == 1

    @given(
        base_pages=st.tuples(
            st.integers(min_value=0xF7000, max_value=0xF9FFF),
            st.integers(min_value=0xF7000, max_value=0xF9FFF)),
        slot_ids=st.sets(st.integers(min_value=0, max_value=30), max_size=6),
        rva_seed=st.integers(min_value=1, max_value=0xFFF),
    )
    @settings(max_examples=80, deadline=None)
    def test_faithful_equals_robust_on_clean_pairs(self, base_pages,
                                                   slot_ids, rva_seed):
        base1, base2 = base_pages[0] << 12, base_pages[1] << 12
        slots = sorted(s * 8 for s in slot_ids)
        rvas = [(rva_seed * (i + 1)) % 0xFF0 for i in range(len(slots))]
        _, c1, c2 = make_pair(base1, base2, size=256, slots=slots, rvas=rvas)
        f = adjust_rva_faithful(c1, base1, c2, base2)
        r = adjust_rva_robust(c1, base1, c2, base2)
        assert f[0] == r[0] and f[1] == r[1]


class TestEquivalence:
    @given(
        bases=st.tuples(
            st.integers(min_value=0xF000_0000 >> 12, max_value=0xF9FF_F000 >> 12),
            st.integers(min_value=0xF000_0000 >> 12, max_value=0xF9FF_F000 >> 12)),
        slot_ids=st.sets(st.integers(min_value=0, max_value=30), max_size=6),
        rva_seed=st.integers(min_value=1, max_value=0xFFFF),
    )
    @settings(max_examples=80, deadline=None)
    def test_robust_equals_vectorized(self, bases, slot_ids, rva_seed):
        base1, base2 = bases[0] << 12, bases[1] << 12
        slots = sorted(s * 8 for s in slot_ids)
        rvas = [(rva_seed * (i + 3)) % 0xFFF0 for i in range(len(slots))]
        _, c1, c2 = make_pair(base1, base2, size=256, slots=slots, rvas=rvas)
        r = adjust_rva_robust(c1, base1, c2, base2)
        v = adjust_rva_vectorized(c1, base1, c2, base2)
        assert r[0] == v[0] and r[1] == v[1]
        assert (r[2].replaced, r[2].unresolved) == \
            (v[2].replaced, v[2].unresolved)

    @given(
        base_pages=st.tuples(
            st.integers(min_value=0xF7000, max_value=0xF9FFF),
            st.integers(min_value=0xF7000, max_value=0xF9FFF)),
        slot_ids=st.sets(st.integers(min_value=0, max_value=30), max_size=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_clean_pairs_always_resolve(self, base_pages, slot_ids):
        """Page-aligned bases (as Windows allocates them): every clean
        relocated pair must fully resolve under every variant."""
        base1, base2 = base_pages[0] << 12, base_pages[1] << 12
        slots = sorted(s * 8 for s in slot_ids)
        rvas = [0x10 + 4 * i for i in range(len(slots))]
        canonical, c1, c2 = make_pair(base1, base2, size=256, slots=slots,
                                      rvas=rvas)
        for mode, fn in ADJUSTERS.items():
            adj1, adj2, stats = fn(c1, base1, c2, base2)
            assert adj1 == adj2, mode
            if base1 != base2:
                assert stats.unresolved == 0, mode
