"""Tests for the O(t) canonical pool-check mode."""

import pytest

from repro.attacks import attack_for_experiment
from repro.cloud import build_testbed
from repro.core import IntegrityChecker, ModChecker
from repro.core.parser import ParsedModule
from repro.guest import build_catalog
from repro.guest.loader import map_file_to_memory
from repro.pe.parser import PEImage
from repro.pe.relocations import apply_relocations


def _infected_tb(exp_id, n_vms=6, victim="Dom3"):
    attack, module = attack_for_experiment(exp_id)
    catalog = build_catalog(seed=42)
    infected = attack.apply(catalog[module]).infected
    tb = build_testbed(n_vms, seed=42,
                       infected={victim: {module: infected}})
    return tb, module


class TestEquivalence:
    def test_clean_pool(self, clean_testbed_session):
        tb = clean_testbed_session
        mc = ModChecker(tb.hypervisor, tb.profile)
        pairwise = mc.check_pool("hal.dll", mode="pairwise").report
        canonical = mc.check_pool("hal.dll", mode="canonical").report
        assert pairwise.all_clean and canonical.all_clean

    @pytest.mark.parametrize("exp_id", ["E1", "E2", "E3", "E4"])
    def test_same_flags_and_signature(self, exp_id):
        tb, module = _infected_tb(exp_id)
        mc = ModChecker(tb.hypervisor, tb.profile)
        pairwise = mc.check_pool(module, mode="pairwise").report
        canonical = mc.check_pool(module, mode="canonical").report
        assert pairwise.flagged() == canonical.flagged() == ["Dom3"]
        assert set(pairwise.mismatched_regions("Dom3")) == \
            set(canonical.mismatched_regions("Dom3"))

    def test_infected_reference_vm(self):
        """The reference (first) VM being the victim must not blind the
        clustering — the majority cluster still wins."""
        tb, module = _infected_tb("E1", victim="Dom1")
        mc = ModChecker(tb.hypervisor, tb.profile)
        report = mc.check_pool(module, mode="canonical").report
        assert report.flagged() == ["Dom1"]
        assert ".text" in report.mismatched_regions("Dom1")

    def test_two_identical_infections(self):
        attack, module = attack_for_experiment("E1")
        catalog = build_catalog(seed=42)
        infected = attack.apply(catalog[module]).infected
        tb = build_testbed(7, seed=42,
                           infected={"Dom2": {module: infected},
                                     "Dom5": {module: infected}})
        mc = ModChecker(tb.hypervisor, tb.profile)
        report = mc.check_pool(module, mode="canonical").report
        assert set(report.flagged()) == {"Dom2", "Dom5"}


class TestCost:
    def test_canonical_checker_phase_cheaper(self):
        tb = build_testbed(15, seed=42)
        mc = ModChecker(tb.hypervisor, tb.profile)
        pairwise = mc.check_pool("http.sys", mode="pairwise")
        canonical = mc.check_pool("http.sys", mode="canonical")
        # The checker phase shrinks from C(15,2)=105 to 14 comparisons.
        assert canonical.timings.checker < pairwise.timings.checker / 3

    def test_unknown_mode_rejected(self, clean_testbed_session):
        tb = clean_testbed_session
        mc = ModChecker(tb.hypervisor, tb.profile)
        with pytest.raises(ValueError, match="unknown pool mode"):
            mc.check_pool("hal.dll", mode="quantum")


class TestBaseCollisions:
    """VMs whose random slide collides with the reference's base.

    Regression for a fleet-scale false positive: adjustment is driven
    by byte differences, so a copy loaded at the *same* base as the
    reference came back raw (unadjusted) and could never match the
    RVA-normalised majority. At 64-VM shards with ~256 possible slides,
    collisions are routine — a pristine 10k-VM fleet raised ~100
    integrity alerts before the partner-adjustment fix.
    """

    BASE = 0xF7040000

    @staticmethod
    def _copy_at(vm, base, tamper=False):
        bp = build_catalog(seed=42)["ntoskrnl.exe"]
        image = map_file_to_memory(bp.file_bytes)
        apply_relocations(image, bp.fixup_rvas,
                          base - bp.optional_header.image_base)
        if tamper:
            fixups = {o for r in bp.fixup_rvas for o in range(r, r + 4)}
            text = next(r for r in PEImage(bytes(image)).code_regions()
                        if r.name == ".text")
            off = next(o for o in range(text.start + 16, text.end)
                       if o not in fixups)
            image[off] ^= 0xFF
        pe = PEImage(bytes(image))
        return ParsedModule(vm_name=vm, module_name=bp.name, base=base,
                            image=bytes(image),
                            header_regions=pe.header_regions(),
                            code_regions=pe.code_regions())

    def test_clean_copy_sharing_reference_base_not_flagged(self):
        B = self.BASE
        mods = [self._copy_at("Dom1", B),
                self._copy_at("Dom2", B + 0x5000),
                self._copy_at("Dom3", B + 0x9000),
                self._copy_at("Dom4", B),          # collides with Dom1
                self._copy_at("Dom5", B + 0x13000)]
        report = IntegrityChecker().check_pool_canonical(mods)
        assert report.all_clean

    def test_tampered_copy_sharing_reference_base_still_flagged(self):
        B = self.BASE
        mods = [self._copy_at("Dom1", B),
                self._copy_at("Dom2", B + 0x5000),
                self._copy_at("Dom3", B + 0x9000),
                self._copy_at("Dom4", B, tamper=True),
                self._copy_at("Dom5", B + 0x13000)]
        report = IntegrityChecker().check_pool_canonical(mods)
        assert report.flagged() == ["Dom4"]
        assert ".text" in report.mismatched_regions("Dom4")

    def test_whole_pool_at_one_base(self):
        # No partner exists; raw digests must still cluster correctly.
        clean = [self._copy_at(f"Dom{i}", self.BASE) for i in range(1, 6)]
        assert IntegrityChecker().check_pool_canonical(clean).all_clean
        dirty = [self._copy_at(f"Dom{i}", self.BASE, tamper=(i == 3))
                 for i in range(1, 6)]
        assert IntegrityChecker().check_pool_canonical(
            dirty).flagged() == ["Dom3"]


class TestEdgeCases:
    def test_empty_pool(self):
        from repro.core import IntegrityChecker
        report = IntegrityChecker().check_pool_canonical([])
        assert report.vm_names == []

    def test_two_vms(self, clean_testbed_session):
        tb = clean_testbed_session
        mc = ModChecker(tb.hypervisor, tb.profile)
        report = mc.check_pool("hal.dll", vms=tb.vm_names[:2],
                               mode="canonical").report
        assert report.all_clean
