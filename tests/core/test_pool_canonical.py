"""Tests for the O(t) canonical pool-check mode."""

import pytest

from repro.attacks import attack_for_experiment
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.guest import build_catalog


def _infected_tb(exp_id, n_vms=6, victim="Dom3"):
    attack, module = attack_for_experiment(exp_id)
    catalog = build_catalog(seed=42)
    infected = attack.apply(catalog[module]).infected
    tb = build_testbed(n_vms, seed=42,
                       infected={victim: {module: infected}})
    return tb, module


class TestEquivalence:
    def test_clean_pool(self, clean_testbed_session):
        tb = clean_testbed_session
        mc = ModChecker(tb.hypervisor, tb.profile)
        pairwise = mc.check_pool("hal.dll", mode="pairwise").report
        canonical = mc.check_pool("hal.dll", mode="canonical").report
        assert pairwise.all_clean and canonical.all_clean

    @pytest.mark.parametrize("exp_id", ["E1", "E2", "E3", "E4"])
    def test_same_flags_and_signature(self, exp_id):
        tb, module = _infected_tb(exp_id)
        mc = ModChecker(tb.hypervisor, tb.profile)
        pairwise = mc.check_pool(module, mode="pairwise").report
        canonical = mc.check_pool(module, mode="canonical").report
        assert pairwise.flagged() == canonical.flagged() == ["Dom3"]
        assert set(pairwise.mismatched_regions("Dom3")) == \
            set(canonical.mismatched_regions("Dom3"))

    def test_infected_reference_vm(self):
        """The reference (first) VM being the victim must not blind the
        clustering — the majority cluster still wins."""
        tb, module = _infected_tb("E1", victim="Dom1")
        mc = ModChecker(tb.hypervisor, tb.profile)
        report = mc.check_pool(module, mode="canonical").report
        assert report.flagged() == ["Dom1"]
        assert ".text" in report.mismatched_regions("Dom1")

    def test_two_identical_infections(self):
        attack, module = attack_for_experiment("E1")
        catalog = build_catalog(seed=42)
        infected = attack.apply(catalog[module]).infected
        tb = build_testbed(7, seed=42,
                           infected={"Dom2": {module: infected},
                                     "Dom5": {module: infected}})
        mc = ModChecker(tb.hypervisor, tb.profile)
        report = mc.check_pool(module, mode="canonical").report
        assert set(report.flagged()) == {"Dom2", "Dom5"}


class TestCost:
    def test_canonical_checker_phase_cheaper(self):
        tb = build_testbed(15, seed=42)
        mc = ModChecker(tb.hypervisor, tb.profile)
        pairwise = mc.check_pool("http.sys", mode="pairwise")
        canonical = mc.check_pool("http.sys", mode="canonical")
        # The checker phase shrinks from C(15,2)=105 to 14 comparisons.
        assert canonical.timings.checker < pairwise.timings.checker / 3

    def test_unknown_mode_rejected(self, clean_testbed_session):
        tb = clean_testbed_session
        mc = ModChecker(tb.hypervisor, tb.profile)
        with pytest.raises(ValueError, match="unknown pool mode"):
            mc.check_pool("hal.dll", mode="quantum")


class TestEdgeCases:
    def test_empty_pool(self):
        from repro.core import IntegrityChecker
        report = IntegrityChecker().check_pool_canonical([])
        assert report.vm_names == []

    def test_two_vms(self, clean_testbed_session):
        tb = clean_testbed_session
        mc = ModChecker(tb.hypervisor, tb.profile)
        report = mc.check_pool("hal.dll", vms=tb.vm_names[:2],
                               mode="canonical").report
        assert report.all_clean
