"""Dynamic membership: admit/evict/reboot reconciliation, warm-up
gating, and the quorum floor."""

import pytest

from repro.cloud import build_testbed
from repro.core import CheckDaemon, ModChecker, RoundRobinPolicy


@pytest.fixture
def env():
    tb = build_testbed(3, seed=42)
    checker = ModChecker(tb.hypervisor, tb.profile)
    daemon = CheckDaemon(checker, RoundRobinPolicy(per_cycle=2))
    return tb, checker, daemon


def _events(daemon):
    return [(event, vm) for _, event, vm in daemon.membership_log]


class TestReconcile:
    def test_new_guest_admitted_and_warmed_up(self, env):
        tb, checker, daemon = env
        daemon.run_cycle()
        tb.hypervisor.create_guest("Late", tb.catalog, seed=99)
        alerts = daemon.run_cycle()
        assert ("admit", "Late") in _events(daemon)
        assert "Late" in checker.pool_vm_names()
        # Warm-up happened inside the same cycle: the VM can vote now.
        assert "Late" in daemon._active_vms()
        assert all(a.kind == "degraded" or "Late" not in a.flagged_vms
                   for a in alerts)

    def test_destroyed_guest_evicted(self, env):
        tb, checker, daemon = env
        daemon.run_cycle()
        victim = tb.vm_names[0]
        tb.hypervisor.destroy(victim)
        daemon.run_cycle()
        assert ("evict", victim) in _events(daemon)
        assert victim not in checker.pool_vm_names()
        assert victim not in daemon._active_vms()

    def test_reboot_detected_via_generation(self, env):
        tb, checker, daemon = env
        daemon.run_cycle()
        rebooted = tb.vm_names[1]
        tb.hypervisor.reboot(rebooted)
        daemon.run_cycle()
        assert ("reboot", rebooted) in _events(daemon)
        # Re-attached session sees the new layout, so checks keep passing.
        alerts = daemon.run_cycle()
        assert [a for a in alerts if a.kind != "degraded"] == []

    def test_no_spurious_events_on_stable_pool(self, env):
        _, _, daemon = env
        daemon.run_cycle()
        daemon.run_cycle()
        assert daemon.membership_log == []

    def test_membership_forces_rediscovery(self, env):
        tb, _, daemon = env
        daemon = CheckDaemon(daemon.checker, RoundRobinPolicy(per_cycle=2),
                             rediscover_every=1000)
        daemon.run_cycle()
        assert not daemon._force_rediscover
        tb.hypervisor.create_guest("Late", tb.catalog, seed=99)
        daemon.run_cycle()          # reconcile flags + clears it via walk
        assert not daemon._force_rediscover
        assert ("admit", "Late") in _events(daemon)


class TestManualMembership:
    def test_admit_requires_warmup_before_voting(self, env):
        tb, checker, daemon = env
        tb.hypervisor.create_guest("Fresh", tb.catalog, seed=7)
        daemon.admit_vm("Fresh")
        assert "Fresh" in checker.pool_vm_names()
        assert "Fresh" not in daemon._active_vms()   # not warmed yet
        daemon.run_cycle()
        assert "Fresh" in daemon._active_vms()

    def test_evict_clears_all_state(self, env):
        # The pool itself is the hypervisor's guest list; evicting
        # clears the daemon's per-VM bookkeeping (breaker, warm-up,
        # generation) and logs the event.
        tb, checker, daemon = env
        victim = tb.vm_names[2]
        tb.hypervisor.destroy(victim)
        daemon.health.record_failure(victim, "forced")
        daemon.evict_vm(victim)
        assert victim not in checker.pool_vm_names()
        assert daemon.health.states() == {}
        assert victim not in daemon._seen_generation
        assert ("evict", victim) in _events(daemon)

    def test_readmitted_vm_gets_fresh_breaker(self, env):
        tb, _, daemon = env
        victim = tb.vm_names[0]
        daemon.health.breaker(victim).record_failure("forced")
        daemon.evict_vm(victim)
        daemon.admit_vm(victim)
        assert daemon.health.allowed(victim)


class TestQuorumFloor:
    def test_quorum_floor_validated(self, env):
        _, checker, _ = env
        with pytest.raises(ValueError, match="quorum_floor"):
            CheckDaemon(checker, quorum_floor=1)

    def test_starved_pool_degrades_not_crashes(self, env):
        _, _, daemon = env
        for vm in daemon.checker.pool_vm_names():
            daemon.health.breaker(vm).record_failure("forced")
            daemon.health.breaker(vm).open_left = 99
        alerts = daemon.run_cycle()
        assert len(alerts) == 1
        assert alerts[0].kind == "degraded"
        assert "quorum starved" in alerts[0].regions[0]

    def test_checks_resume_when_quorum_returns(self, env):
        _, _, daemon = env
        vms = daemon.checker.pool_vm_names()
        for vm in vms:
            daemon.health.breaker(vm).record_failure("forced")
            daemon.health.breaker(vm).open_left = 2
        daemon.run_cycle()                  # starved
        daemon.run_cycle()                  # cool-downs expire -> HALF_OPEN
        alerts = daemon.run_cycle()         # probes pass, checks resume
        assert daemon.quarantined == []
        assert [a for a in alerts if a.kind != "degraded"] == []
        assert sorted(daemon._active_vms()) == sorted(vms)
