"""Graceful degradation: quorum voting, quarantine and recovery.

The resilience contract from the fault-injection tentpole: a VM whose
introspection keeps failing after the retry budget is *degraded* —
dropped from the quorum and reported, never allowed to abort a sweep —
and the daemon quarantines it for a bounded number of cycles before
probing again. Permanent per-module failures (a decoy entry's unbacked
``DllBase``) degrade one check without quarantining a healthy VM.
"""

from __future__ import annotations

import pytest

from repro.attacks.memory import LdrDecoyAttack
from repro.cloud import build_testbed, stage_experiment
from repro.core import CheckDaemon, ModChecker
from repro.core.daemon import RoundRobinPolicy
from repro.errors import InsufficientPool, RetryExhausted
from repro.hypervisor import FaultConfig, FaultInjector
from repro.pe import build_driver

SEED = 42

#: every read on the targeted domain opens an outage window far longer
#: than the default retry budget can sleep through — guaranteed
#: exhaustion, deterministic degradation
SICK = dict(unreachable_rate=1.0, unreachable_duration=10.0)


def _sick_injector(*domains):
    return FaultInjector(FaultConfig(only_domains=tuple(domains), **SICK),
                         seed=SEED)


class TestPoolDegradation:
    def test_sick_vm_is_degraded_not_fatal(self):
        tb = build_testbed(4, seed=SEED)
        mc = ModChecker(tb.hypervisor, tb.profile)
        with _sick_injector("Dom2").installed(tb.hypervisor):
            out = mc.check_pool("hal.dll")
        report = out.report
        assert set(report.degraded) == {"Dom2"}
        assert report.degraded["Dom2"].startswith("retry-exhausted")
        # Dom2 carries no verdict; the survivors vote and stay clean
        assert "Dom2" not in report.verdicts
        assert sorted(report.verdicts) == ["Dom1", "Dom3", "Dom4"]
        assert report.all_clean

    def test_detection_survives_degradation(self):
        # E1 on Dom3 still fires when an unrelated VM drops out.
        scenario = stage_experiment("E1", n_vms=6, victim="Dom3", seed=SEED)
        with _sick_injector("Dom5").installed(
                scenario.testbed.hypervisor):
            report = scenario.run_pool_check().report
        assert report.flagged() == ["Dom3"]
        assert set(report.degraded) == {"Dom5"}

    def test_insufficient_quorum_raises(self):
        tb = build_testbed(3, seed=SEED)
        mc = ModChecker(tb.hypervisor, tb.profile)
        with _sick_injector("Dom1", "Dom2").installed(tb.hypervisor):
            with pytest.raises(InsufficientPool) as err:
                mc.check_pool("hal.dll")
        assert "degraded" in str(err.value)

    def test_degraded_target_raises_retry_exhausted(self):
        tb = build_testbed(4, seed=SEED)
        mc = ModChecker(tb.hypervisor, tb.profile)
        with _sick_injector("Dom2").installed(tb.hypervisor):
            with pytest.raises(RetryExhausted):
                mc.check_on_vm("hal.dll", "Dom2")

    def test_decoy_entry_is_unreadable_not_retry_exhausted(self):
        tb = build_testbed(4, seed=SEED)
        LdrDecoyAttack(decoy_name="ghost.sys").apply(
            tb.hypervisor.domain("Dom2").kernel)
        mc = ModChecker(tb.hypervisor, tb.profile)
        parsed, _, _, failed = mc.fetch_modules("ghost.sys", tb.vm_names)
        assert parsed == []
        assert set(failed) == {"Dom2"}
        assert failed["Dom2"].startswith("unreadable")

    def test_sixteen_vm_pool_at_five_percent_transients(self):
        """The acceptance scenario: 16 VMs, 5% transient rate, default
        retry — the sweep completes and matches the fault-free run."""
        baseline_tb = build_testbed(16, seed=SEED)
        baseline = ModChecker(baseline_tb.hypervisor,
                              baseline_tb.profile).check_pool("hal.dll")

        tb = build_testbed(16, seed=SEED)
        mc = ModChecker(tb.hypervisor, tb.profile)
        injector = FaultInjector(FaultConfig(transient_rate=0.05), seed=SEED)
        with injector.installed(tb.hypervisor):
            out = mc.check_pool("hal.dll")
        assert injector.stats.transient > 0
        surviving = set(out.report.verdicts)
        assert surviving | set(out.report.degraded) == \
            set(baseline.report.verdicts)
        assert out.report.flagged() == [
            vm for vm in baseline.report.flagged() if vm in surviving]
        assert out.report.all_clean


class TestDaemonQuarantine:
    def _daemon(self, tb, **kwargs):
        mc = ModChecker(tb.hypervisor, tb.profile)
        return CheckDaemon(mc, RoundRobinPolicy(per_cycle=2), **kwargs)

    def test_quarantine_and_recovery(self):
        tb = build_testbed(4, seed=SEED)
        daemon = self._daemon(tb, quarantine_cycles=2)
        injector = _sick_injector("Dom3")
        injector.install(tb.hypervisor)
        alerts = daemon.run_cycle()
        assert daemon.quarantined == ["Dom3"]
        assert any(a.kind == "degraded" and a.degraded == ("Dom3",)
                   for a in alerts)
        # while quarantined, Dom3 is out of the sweep...
        injector.uninstall()
        assert "Dom3" not in daemon._active_vms()
        daemon.run_cycle()
        daemon.run_cycle()
        # ...and after the quarantine expires it rejoins cleanly
        assert daemon.quarantined == []
        assert daemon.run_cycle() == []
        assert "Dom3" in daemon._active_vms()

    def test_decoy_does_not_quarantine(self):
        tb = build_testbed(4, seed=SEED)
        LdrDecoyAttack(decoy_name="ghost.sys").apply(
            tb.hypervisor.domain("Dom2").kernel)
        daemon = self._daemon(tb)
        daemon.policy = RoundRobinPolicy(per_cycle=32)  # cover every module
        for _ in range(4):
            daemon.run_cycle()
        assert daemon.quarantined == []
        assert not any(a.kind == "degraded" for a in daemon.log.alerts)
        # the cross-view sweep still exposes the decoy for what it is
        assert any(a.kind == "decoy-entry" for a in daemon.log.alerts)

    def test_all_vms_unreachable_degrades_not_crashes(self):
        # Every breaker OPEN → the quorum is starved; the service must
        # report that and keep running, not die on InsufficientPool.
        tb = build_testbed(3, seed=SEED)
        daemon = self._daemon(tb)
        for vm in tb.vm_names:
            daemon.health.breaker(vm).record_failure("forced")
            daemon.health.breaker(vm).open_left = 99
        alerts = daemon.run_cycle()
        assert daemon.quarantined == sorted(tb.vm_names)
        assert [a.kind for a in alerts] == ["degraded"]
        assert "quorum starved" in alerts[0].regions[0]
        # next cycles keep degrading without ever raising
        daemon.run_cycle()
        assert all(a.kind == "degraded" for a in daemon.log.alerts)


class TestDaemonRediscovery:
    def test_new_module_is_picked_up(self):
        tb = build_testbed(4, seed=SEED)
        mc = ModChecker(tb.hypervisor, tb.profile)
        daemon = CheckDaemon(mc, RoundRobinPolicy(), rediscover_every=1)
        daemon.run_cycle()
        assert "lateload.sys" not in daemon._modules
        blueprint = build_driver("lateload.sys", seed=7, n_functions=4,
                                 avg_function_size=64, data_size=0x100)
        for vm in tb.vm_names:
            tb.hypervisor.domain(vm).kernel.load_module(blueprint)
        daemon.run_cycle()
        assert "lateload.sys" in daemon._modules

    def test_rediscovery_ttl_respected(self):
        tb = build_testbed(4, seed=SEED)
        mc = ModChecker(tb.hypervisor, tb.profile)
        daemon = CheckDaemon(mc, RoundRobinPolicy(), rediscover_every=3)
        daemon.run_cycle()
        first_cycle = daemon._modules_cycle
        daemon.run_cycle()
        assert daemon._modules_cycle == first_cycle       # cached
        daemon.run_cycle()
        daemon.run_cycle()
        assert daemon._modules_cycle > first_cycle        # TTL elapsed

    def test_union_keeps_hidden_module_monitored(self):
        # DKOM-unlinking dummy.sys on the *first* VM must not drop it
        # from the monitored set — the other clones still list it.
        tb = build_testbed(4, seed=SEED)
        tb.hypervisor.domain("Dom1").kernel.unload_module("dummy.sys")
        mc = ModChecker(tb.hypervisor, tb.profile)
        daemon = CheckDaemon(mc, RoundRobinPolicy())
        daemon.run_cycle()
        assert "dummy.sys" in daemon._modules
