"""Unit tests for Module-Parser."""

import pytest

from repro.core.parser import ModuleParser
from repro.core.searcher import ModuleCopy
from repro.errors import PEFormatError
from repro.pe import map_file_to_memory


@pytest.fixture
def copy(small_driver):
    image = bytes(map_file_to_memory(small_driver.file_bytes))
    return ModuleCopy("Dom1", "unit.sys", 0xF7010000, image, 0x80001000)


class TestParse:
    def test_regions_extracted(self, copy):
        parsed = ModuleParser().parse(copy)
        names = parsed.region_names()
        assert names[0] == "IMAGE_DOS_HEADER"
        assert ".text" in names and "INIT" in names
        assert ".rdata" not in names            # not executable

    def test_identity_preserved(self, copy):
        parsed = ModuleParser().parse(copy)
        assert parsed.vm_name == "Dom1"
        assert parsed.module_name == "unit.sys"
        assert parsed.base == 0xF7010000

    def test_region_bytes_slice_image(self, copy, small_driver):
        parsed = ModuleParser().parse(copy)
        text_region = next(r for r in parsed.code_regions
                           if r.name == ".text")
        text = small_driver.section(".text")
        assert parsed.region_bytes(text_region) == \
            copy.image[text.virtual_address:
                       text.virtual_address + text.virtual_size]

    def test_garbage_image_raises(self):
        bad = ModuleCopy("Dom1", "x", 0, b"\x00" * 4096, 0)
        with pytest.raises(PEFormatError):
            ModuleParser().parse(bad)

    def test_charge_called_with_positive_cost(self, copy):
        charges = []
        ModuleParser(charge=charges.append).parse(copy)
        assert len(charges) == 1 and charges[0] > 0

    def test_charge_scales_with_size(self, copy, catalog):
        big_image = bytes(map_file_to_memory(
            catalog["ntoskrnl.exe"].file_bytes))
        big = ModuleCopy("Dom1", "ntoskrnl.exe", 0xF7000000, big_image, 0)
        small_charges, big_charges = [], []
        ModuleParser(charge=small_charges.append).parse(copy)
        ModuleParser(charge=big_charges.append).parse(big)
        assert big_charges[0] > small_charges[0]
