"""Tests for the related-work baseline detectors (§II as code)."""

import pytest

from repro.attacks import RuntimeCodePatchAttack
from repro.cloud import build_testbed, stage_experiment
from repro.core import ModChecker
from repro.core.baselines import DictionaryChecker, SVVChecker
from repro.guest import build_catalog


@pytest.fixture(scope="module")
def clean_catalog():
    return build_catalog(seed=42)


@pytest.fixture(scope="module")
def dictionary(clean_catalog):
    return DictionaryChecker(clean_catalog)


class TestCleanBaselines:
    def test_svv_clean_guest(self, clean_testbed_session, clean_catalog):
        tb = clean_testbed_session
        mc = ModChecker(tb.hypervisor, tb.profile)
        svv = SVVChecker(mc.vmi_for("Dom1"), clean_catalog)
        for module in ("hal.dll", "http.sys", "dummy.sys"):
            verdict = svv.check_module(module)
            assert verdict.clean, (module, verdict.mismatched_regions)

    def test_dictionary_clean_guest(self, clean_testbed_session, dictionary):
        tb = clean_testbed_session
        mc = ModChecker(tb.hypervisor, tb.profile)
        for module in ("hal.dll", "http.sys", "dummy.sys"):
            verdict = dictionary.check_module(mc.vmi_for("Dom2"), module)
            assert verdict.clean, (module, verdict.mismatched_regions)

    def test_dictionary_unknown_module(self, dictionary,
                                       clean_testbed_session):
        tb = clean_testbed_session
        mc = ModChecker(tb.hypervisor, tb.profile)
        # remove from DB to simulate an unregistered third-party driver
        db = DictionaryChecker(
            {k: v for k, v in tb.catalog.items() if k != "dummy.sys"})
        verdict = db.check_module(mc.vmi_for("Dom1"), "dummy.sys")
        assert not verdict.clean
        assert "<module not in database>" in verdict.mismatched_regions


class TestFileLevelInfection:
    """§II: 'most malware infects files on disk first' — SVV's blind spot."""

    @pytest.mark.parametrize("exp_id", ["E1", "E2", "E3", "E4"])
    def test_svv_misses_disk_infections(self, exp_id, clean_catalog):
        scenario = stage_experiment(exp_id, n_vms=4)
        infected_disk = dict(clean_catalog)
        infected_disk[scenario.module] = scenario.infection.infected
        svv = SVVChecker(scenario.checker.vmi_for(scenario.victim),
                         infected_disk)
        assert svv.check_module(scenario.module).clean   # the miss

    @pytest.mark.parametrize("exp_id", ["E1", "E2", "E3", "E4"])
    def test_dictionary_catches_disk_infections(self, exp_id, dictionary):
        scenario = stage_experiment(exp_id, n_vms=4)
        verdict = dictionary.check_module(
            scenario.checker.vmi_for(scenario.victim), scenario.module)
        assert not verdict.clean

    @pytest.mark.parametrize("exp_id", ["E1", "E2", "E3", "E4"])
    def test_modchecker_catches_them_too(self, exp_id):
        scenario = stage_experiment(exp_id, n_vms=4)
        assert scenario.run_pool_check().report.flagged() == \
            [scenario.victim]


class TestMemoryLevelInfection:
    def test_all_three_catch_runtime_patch(self, clean_catalog, dictionary):
        tb = build_testbed(4, seed=42)
        RuntimeCodePatchAttack().apply(
            tb.hypervisor.domain("Dom2").kernel, tb.catalog["hal.dll"])
        mc = ModChecker(tb.hypervisor, tb.profile)
        vmi = mc.vmi_for("Dom2")
        assert not SVVChecker(vmi, clean_catalog).check_module(
            "hal.dll").clean
        assert not dictionary.check_module(vmi, "hal.dll").clean
        assert mc.check_pool("hal.dll").report.flagged() == ["Dom2"]

    def test_svv_names_the_region(self, clean_catalog):
        tb = build_testbed(2, seed=42)
        RuntimeCodePatchAttack().apply(
            tb.hypervisor.domain("Dom1").kernel, tb.catalog["hal.dll"])
        mc = ModChecker(tb.hypervisor, tb.profile)
        verdict = SVVChecker(mc.vmi_for("Dom1"),
                             clean_catalog).check_module("hal.dll")
        assert verdict.mismatched_regions == (".text",)


class TestLegitimateUpdate:
    """The paper's motivation: updates break hash dictionaries."""

    def _updated_pool(self):
        import sys
        sys.path.insert(0, ".")
        from benchmarks.test_ablation_versioning import updated_driver
        updated = updated_driver()
        tb = build_testbed(3, seed=42,
                           infected={"Dom1": {"hal.dll": updated}})
        mc = ModChecker(tb.hypervisor, tb.profile)
        return tb, mc, updated

    def test_dictionary_false_alarms_on_update(self, dictionary):
        _, mc, _ = self._updated_pool()
        verdict = dictionary.check_module(mc.vmi_for("Dom1"), "hal.dll")
        assert not verdict.clean            # the false alarm

    def test_svv_accepts_update(self, clean_catalog):
        tb, mc, updated = self._updated_pool()
        disk = dict(clean_catalog)
        disk["hal.dll"] = updated            # the VM's disk has the update
        verdict = SVVChecker(mc.vmi_for("Dom1"), disk).check_module(
            "hal.dll")
        assert verdict.clean

    def test_modchecker_versioned_accepts_update(self):
        from repro.core import check_pool_versioned
        tb, mc, _ = self._updated_pool()
        parsed, *_ = mc.fetch_modules("hal.dll", tb.vm_names)
        report = check_pool_versioned(parsed, mc.checker)
        # one updated VM = suspicious singleton; from 2 updated VMs up
        # it is silent (covered in test_versioning) — either way no
        # dictionary to maintain.
        assert report.singletons == ["Dom1"]
