"""Unit tests for Module-Searcher."""

import struct

import pytest

from repro.errors import IntrospectionFault, ModuleNotLoadedError
from repro.core.searcher import ModuleSearcher
from repro.hypervisor import Hypervisor
from repro.vmi import OSProfile, VMIInstance


@pytest.fixture(scope="module")
def env(catalog):
    hv = Hypervisor()
    hv.create_guest("Dom1", catalog, seed=1)
    profile = OSProfile.from_guest(hv.domain("Dom1").kernel)
    return hv, profile, catalog


@pytest.fixture
def searcher(env):
    hv, profile, _ = env
    return ModuleSearcher(VMIInstance(hv, "Dom1", profile))


class TestListWalk:
    def test_lists_all_modules_in_load_order(self, searcher, env):
        _, _, catalog = env
        names = [e.name for e in searcher.list_modules()]
        assert names == list(catalog)

    def test_entries_match_guest_ground_truth(self, searcher, env):
        hv, _, _ = env
        kernel = hv.domain("Dom1").kernel
        for entry in searcher.list_modules():
            truth = kernel.module(entry.name)
            assert entry.dll_base == truth.base
            assert entry.size_of_image == truth.size_of_image
            assert entry.entry_point == truth.entry_point


class TestFind:
    def test_find_by_name(self, searcher):
        entry = searcher.find("http.sys")
        assert entry.name == "http.sys"

    def test_find_case_insensitive(self, searcher):
        assert searcher.find("HAL.DLL").name == "hal.dll"

    def test_missing_module_raises(self, searcher):
        with pytest.raises(ModuleNotLoadedError):
            searcher.find("rootkit.sys")


class TestCopy:
    def test_copy_matches_guest_memory(self, searcher, env):
        hv, _, _ = env
        kernel = hv.domain("Dom1").kernel
        copy = searcher.copy_module("hal.dll")
        assert copy.image == kernel.read_module_image("hal.dll")
        assert copy.vm_name == "Dom1"
        assert copy.base == kernel.module("hal.dll").base

    def test_copy_charges_pages(self, env):
        hv, profile, _ = env
        vmi = VMIInstance(hv, "Dom1", profile)
        vmi.flush_caches()
        before = vmi.stats.pages_mapped
        copy = ModuleSearcher(vmi).copy_module("http.sys")
        pages = (len(copy.image) + 4095) // 4096
        assert vmi.stats.pages_mapped - before >= pages


class TestHostileGuest:
    """A compromised guest controls the list bytes; the searcher must
    not hang or over-copy."""

    def _fresh(self, catalog, seed=77):
        hv = Hypervisor()
        hv.create_guest("Evil", catalog, seed=seed)
        profile = OSProfile.from_guest(hv.domain("Evil").kernel)
        return hv, ModuleSearcher(VMIInstance(hv, "Evil", profile))

    def test_cyclic_list_bounded(self, catalog):
        hv, searcher = self._fresh(catalog)
        kernel = hv.domain("Evil").kernel
        # Make the first node's FLINK point at itself: infinite list.
        head = kernel.symbols["PsLoadedModuleList"]
        first = struct.unpack("<I", kernel.aspace.read(head, 4))[0]
        kernel.aspace.write(first, struct.pack("<I", first))
        with pytest.raises(IntrospectionFault, match="bound"):
            searcher.list_modules()

    def test_null_flink_detected(self, catalog):
        hv, searcher = self._fresh(catalog)
        kernel = hv.domain("Evil").kernel
        head = kernel.symbols["PsLoadedModuleList"]
        first = struct.unpack("<I", kernel.aspace.read(head, 4))[0]
        kernel.aspace.write(first, struct.pack("<I", 0))
        with pytest.raises(IntrospectionFault, match="NULL"):
            searcher.list_modules()

    def test_implausible_size_rejected(self, catalog):
        hv, searcher = self._fresh(catalog)
        kernel = hv.domain("Evil").kernel
        mod = kernel.module("hal.dll")
        from repro.guest.ldr import OFF_SIZEOFIMAGE
        kernel.aspace.write(mod.ldr_entry_va + OFF_SIZEOFIMAGE,
                            struct.pack("<I", 1 << 30))
        with pytest.raises(IntrospectionFault, match="implausible"):
            searcher.copy_module("hal.dll")

    def test_unreadable_name_skips_node(self, catalog):
        hv, searcher = self._fresh(catalog)
        kernel = hv.domain("Evil").kernel
        mod = kernel.module("disk.sys")
        from repro.guest.ldr import OFF_BASEDLLNAME
        # Point the name buffer at unmapped VA.
        kernel.aspace.write(mod.ldr_entry_va + OFF_BASEDLLNAME + 4,
                            struct.pack("<I", 0x6000_0000))
        names = [e.name for e in searcher.list_modules()]
        assert "disk.sys" not in names
        assert "hal.dll" in names           # rest of the walk survives

    def test_hidden_module_not_found(self, catalog):
        """DKOM-style hiding: unlinked modules escape the searcher —
        a known limit of list-walking tools the paper inherits."""
        hv, searcher = self._fresh(catalog)
        kernel = hv.domain("Evil").kernel
        kernel.unload_module("dummy.sys")    # unlink, image stays mapped
        with pytest.raises(ModuleNotLoadedError):
            searcher.find("dummy.sys")
