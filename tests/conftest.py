"""Shared fixtures: catalogs and testbeds are expensive, so session-scope
the read-only ones and keep mutating tests on their own instances."""

from __future__ import annotations

import pytest

from repro.cloud import build_testbed
from repro.guest import build_catalog
from repro.pe import build_driver

SEED = 42


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="Rewrite golden files (tests/forensics/golden/) from the "
             "current output instead of diffing against them.")


@pytest.fixture(scope="session")
def catalog():
    """The standard driver catalog (read-only; do not mutate)."""
    return build_catalog(seed=SEED)


@pytest.fixture(scope="session")
def hal_blueprint(catalog):
    return catalog["hal.dll"]


@pytest.fixture(scope="session")
def dummy_blueprint(catalog):
    return catalog["dummy.sys"]


@pytest.fixture(scope="session")
def small_driver():
    """A small standalone driver for unit tests."""
    return build_driver("unit.sys", seed=7, n_functions=4,
                        avg_function_size=80, data_size=0x200)


@pytest.fixture(scope="session")
def clean_testbed_session():
    """A 5-VM clean cloud shared by read-only tests."""
    return build_testbed(5, seed=SEED)


@pytest.fixture
def clean_testbed():
    """A fresh 4-VM clean cloud for tests that mutate state."""
    return build_testbed(4, seed=SEED)
