#!/usr/bin/env python
"""Generate docs/API.md from the package's public surface.

Walks every ``repro`` subpackage, collects the names each module exports
via ``__all__``, and emits a markdown reference built from the live
docstrings — so the reference cannot drift from the code. Run::

    python tools/gen_api_docs.py          # writes docs/API.md
    python tools/gen_api_docs.py --check  # exit 1 if API.md is stale
"""

from __future__ import annotations

import importlib
import inspect
import sys
from pathlib import Path

PACKAGES = [
    "repro",
    "repro.pe", "repro.mem", "repro.guest", "repro.hypervisor",
    "repro.vmi", "repro.attacks", "repro.core", "repro.perf",
    "repro.cloud", "repro.analysis", "repro.obs", "repro.forensics",
]

MODULES = [
    "repro.errors", "repro.rng", "repro.cli",
    "repro.pe.structures", "repro.pe.builder", "repro.pe.parser",
    "repro.pe.relocations", "repro.pe.exports", "repro.pe.imports",
    "repro.pe.codegen", "repro.pe.disasm", "repro.pe.checksum",
    "repro.mem.physical", "repro.mem.paging", "repro.mem.address_space",
    "repro.mem.regions",
    "repro.guest.unicode_string", "repro.guest.ldr", "repro.guest.loader",
    "repro.guest.kernel", "repro.guest.catalog", "repro.guest.filesystem",
    "repro.hypervisor.clock", "repro.hypervisor.domain",
    "repro.hypervisor.scheduler", "repro.hypervisor.xen",
    "repro.hypervisor.faults", "repro.hypervisor.traps",
    "repro.vmi.core", "repro.vmi.symbols", "repro.vmi.cache",
    "repro.vmi.dump", "repro.vmi.retry",
    "repro.attacks.base", "repro.attacks.opcode",
    "repro.attacks.inline_hook", "repro.attacks.stub",
    "repro.attacks.dll_inject", "repro.attacks.headers",
    "repro.attacks.memory", "repro.attacks.registry",
    "repro.core.searcher", "repro.core.parser", "repro.core.rva",
    "repro.core.integrity", "repro.core.modchecker", "repro.core.report",
    "repro.core.parallel", "repro.core.carver", "repro.core.crossview",
    "repro.core.versioning", "repro.core.daemon", "repro.core.health",
    "repro.core.baselines",
    "repro.perf.costmodel", "repro.perf.workload", "repro.perf.monitor",
    "repro.perf.timing",
    "repro.cloud.testbed", "repro.cloud.scenarios", "repro.cloud.chaos",
    "repro.cloud.fleet",
    "repro.analysis.stats", "repro.analysis.tables", "repro.analysis.export",
    "repro.obs.trace", "repro.obs.metrics", "repro.obs.bridge",
    "repro.obs.events", "repro.obs.sinks", "repro.obs.profiler",
    "repro.obs.slo",
    "repro.forensics.diff", "repro.forensics.evidence",
    "repro.forensics.bundle",
]


def _first_paragraph(doc: str | None) -> str:
    if not doc:
        return "(undocumented)"
    paragraph = doc.strip().split("\n\n")[0]
    return " ".join(line.strip() for line in paragraph.splitlines())


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _describe(module, name: str) -> list[str]:
    obj = getattr(module, name, None)
    if obj is None:
        return []
    lines: list[str] = []
    if inspect.isclass(obj):
        lines.append(f"#### `{name}`\n")
        lines.append(_first_paragraph(obj.__doc__) + "\n")
        methods = [
            (m, fn) for m, fn in inspect.getmembers(obj)
            if not m.startswith("_")
            and (inspect.isfunction(fn) or inspect.ismethod(fn))
            and fn.__qualname__.startswith(obj.__name__ + ".")]
        for m, fn in methods:
            lines.append(f"- `{m}{_signature(fn)}` — "
                         f"{_first_paragraph(fn.__doc__)}")
        if methods:
            lines.append("")
    elif inspect.isfunction(obj):
        lines.append(f"#### `{name}{_signature(obj)}`\n")
        lines.append(_first_paragraph(obj.__doc__) + "\n")
    else:
        doc = _first_paragraph(getattr(obj, "__doc__", None)) \
            if not isinstance(obj, (int, str, bytes, tuple, dict, float)) \
            else f"constant = `{obj!r}`" if not isinstance(obj, dict) \
            else "constant mapping"
        lines.append(f"#### `{name}`\n")
        lines.append((doc or "constant") + "\n")
    return lines


def generate() -> str:
    out: list[str] = [
        "# API reference",
        "",
        "_Generated from docstrings by `tools/gen_api_docs.py`;"
        " do not edit by hand._",
        "",
    ]
    for mod_name in MODULES:
        module = importlib.import_module(mod_name)
        exported = list(getattr(module, "__all__", []))
        if not exported:
            continue
        out.append(f"## `{mod_name}`")
        out.append("")
        out.append(_first_paragraph(module.__doc__))
        out.append("")
        for name in exported:
            out.extend(_describe(module, name))
    return "\n".join(out) + "\n"


def main(argv: list[str]) -> int:
    target = Path(__file__).resolve().parent.parent / "docs" / "API.md"
    content = generate()
    if "--check" in argv:
        if not target.exists() or target.read_text() != content:
            print(f"{target} is stale; regenerate with "
                  f"python tools/gen_api_docs.py")
            return 1
        print(f"{target} is up to date")
        return 0
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(content)
    print(f"wrote {target} ({len(content.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
