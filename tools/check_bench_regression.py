#!/usr/bin/env python
"""Gate pytest-benchmark results against a checked-in baseline.

Absolute wall-clock on shared CI runners is noisy, so the default
comparison is **relative**: each benchmark's share of the run's total
mean time. A real regression (one path suddenly slower) shifts its
share; a uniformly slow runner shifts nothing. The check is one-sided —
only a share *increase* beyond the tolerance fails; getting faster is
not an error, and drift smaller than an absolute noise floor
(``SHARE_NOISE_FLOOR``) is ignored — sub-percent shares move by more
than any sane relative tolerance on jitter alone. Pass ``--absolute``
to compare raw mean seconds instead (useful on a dedicated box).

``--fleet`` switches to the fleet-tier contract instead: the results
file is the ``{"metrics": {...}}`` JSON the 10k-VM tier writes (see
``benchmarks/test_scale.py``), every metric is a *simulated-clock*
scalar (deterministic, so tight tolerances are safe), and the gate is
direction-aware — ``checks_per_sec`` must not *drop*, latency metrics
must not *rise*.

``--wallclock`` gates *real speedup ratios* between benchmark pairs
measured in the same run: each tier in the baseline's ``wallclock``
section names a numerator and denominator benchmark and the minimum
mean-time ratio the pair must sustain (e.g. the scalar reference read
must stay ≥3x slower than the vectorised batch read). Because both
sides of a ratio come from one process on one runner, the gate is
immune to the machine-speed noise that makes absolute seconds
useless on shared CI — a genuinely faster runner speeds both sides.

``--profile`` gates cost *attribution* instead of cost: the results
file is a ``modchecker profile --json-out`` document, and the check
compares each stage's and each page-op's **share** of the simulated
total against ``benchmarks/baseline_profile.json``. Shares are
dimensionless fractions of a deterministic simulation, so the
comparison is two-sided and uses an *absolute* drift tolerance
(default 0.05): work silently migrating between stages is a regression
even when the total stays flat. The baseline holds one entry per
scenario (``substrate``, ``fleet``), matched via the document's
``scenario`` key.

Usage::

    python tools/check_bench_regression.py results.json            # gate
    python tools/check_bench_regression.py results.json --update   # rebase
    python tools/check_bench_regression.py results.json \
        --baseline benchmarks/baseline_substrate.json --tolerance 0.20
    python tools/check_bench_regression.py fleet-metrics.json --fleet
    python tools/check_bench_regression.py profile.json --profile
    python tools/check_bench_regression.py results.json --wallclock

Exit status: 0 = within tolerance, 1 = regression, 2 = usage/schema
error (missing baseline, benchmark set drift).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = (Path(__file__).resolve().parent.parent
                    / "benchmarks" / "baseline_substrate.json")
DEFAULT_FLEET_BASELINE = (Path(__file__).resolve().parent.parent
                          / "benchmarks" / "baseline_fleet.json")
DEFAULT_PROFILE_BASELINE = (Path(__file__).resolve().parent.parent
                            / "benchmarks" / "baseline_profile.json")

#: Minimum absolute share drift the relative gate will act on. The
#: micro-benchmarks span four orders of magnitude, so the smallest
#: ones hold well under 1% of the total: run-to-run jitter in the
#: *dominant* benchmarks swings those shares by far more than 20% of
#: their own size with no code change at all. Below this floor a share
#: increase carries no signal; the fast paths are still gated in real
#: terms by the wall-clock ratio tiers (--wallclock).
SHARE_NOISE_FLOOR = 0.0075

#: Which way each fleet metric is allowed to move. Throughput must not
#: fall below baseline*(1-tolerance); anything else (latencies) must
#: not rise above baseline*(1+tolerance). Unknown metrics default to
#: lower-is-better, the safe direction for a latency-like scalar.
FLEET_HIGHER_IS_BETTER = ("checks_per_sec",)


def load_means(path: Path) -> dict[str, float]:
    """Benchmark name -> mean seconds, from pytest-benchmark JSON."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    benches = data.get("benchmarks")
    if not benches:
        raise SystemExit(f"error: {path} holds no benchmarks")
    return {b["name"]: float(b["stats"]["mean"]) for b in benches}


def load_fleet_metrics(path: Path) -> dict[str, float]:
    """Metric name -> simulated scalar, from the fleet tier's JSON."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    metrics = data.get("metrics")
    if not metrics:
        raise SystemExit(f"error: {path} holds no fleet metrics")
    return {name: float(value) for name, value in metrics.items()}


def compare_fleet(current: dict[str, float], baseline: dict[str, float],
                  tolerance: float) -> list[str]:
    """Direction-aware fleet gate; returns failure lines."""
    failures = []
    missing = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))
    if missing:
        failures.append(f"metrics missing from run: {', '.join(missing)}")
    if added:
        failures.append(
            f"metrics not in baseline (rebase with --update): "
            f"{', '.join(added)}")
    if failures:
        return failures
    for name in sorted(baseline):
        if name in FLEET_HIGHER_IS_BETTER:
            floor = baseline[name] * (1.0 - tolerance)
            if current[name] < floor:
                failures.append(
                    f"{name}: {current[name]:.6g} < "
                    f"{baseline[name]:.6g} -{tolerance:.0%}")
        else:
            ceiling = baseline[name] * (1.0 + tolerance)
            if current[name] > ceiling:
                failures.append(
                    f"{name}: {current[name]:.6g} > "
                    f"{baseline[name]:.6g} +{tolerance:.0%}")
    return failures


def load_profile(path: Path) -> tuple[str, dict[str, dict[str, float]]]:
    """(scenario, {axis: {name: share}}) from a profiler JSON doc."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if data.get("format") != "modchecker-profile/1":
        raise SystemExit(
            f"error: {path} is not a modchecker profile document")
    scenario = data.get("scenario")
    if not scenario:
        raise SystemExit(f"error: {path} carries no scenario tag")
    return scenario, {
        axis: {name: float(v)
               for name, v in data.get(axis, {}).items()}
        for axis in ("stage_shares", "op_shares")}


def compare_profile(current: dict[str, dict[str, float]],
                    baseline: dict[str, dict[str, float]],
                    tolerance: float) -> list[str]:
    """Two-sided absolute share-drift gate; returns failure lines."""
    failures = []
    for axis in ("stage_shares", "op_shares"):
        cur, base = current.get(axis, {}), baseline.get(axis, {})
        missing = sorted(set(base) - set(cur))
        added = sorted(set(cur) - set(base))
        if missing:
            failures.append(
                f"{axis} missing from run: {', '.join(missing)}")
        if added:
            failures.append(
                f"{axis} not in baseline (rebase with --update): "
                f"{', '.join(added)}")
        if missing or added:
            continue
        for name in sorted(base):
            drift = cur[name] - base[name]
            if abs(drift) > tolerance:
                failures.append(
                    f"{axis}/{name}: share {cur[name]:.4f} vs baseline "
                    f"{base[name]:.4f} (drift {drift:+.4f} > "
                    f"±{tolerance:.2f})")
    return failures


def load_wallclock_tiers(path: Path) -> list[dict]:
    """The ``wallclock`` ratio tiers from a baseline document."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    tiers = data.get("wallclock")
    if not tiers:
        raise SystemExit(
            f"error: {path} holds no wallclock ratio tiers")
    for tier in tiers:
        for key in ("name", "numerator", "denominator", "min_ratio"):
            if key not in tier:
                raise SystemExit(
                    f"error: wallclock tier missing {key!r}: {tier}")
    return tiers


def compare_wallclock(means: dict[str, float],
                      tiers: list[dict]) -> list[str]:
    """Ratio-tier gate; returns failure lines (empty = pass)."""
    failures = []
    for tier in tiers:
        num, den = tier["numerator"], tier["denominator"]
        absent = [n for n in (num, den) if n not in means]
        if absent:
            failures.append(
                f"{tier['name']}: benchmarks missing from run: "
                f"{', '.join(absent)}")
            continue
        if means[den] <= 0:
            failures.append(f"{tier['name']}: non-positive mean for {den}")
            continue
        ratio = means[num] / means[den]
        if ratio < float(tier["min_ratio"]):
            failures.append(
                f"{tier['name']}: {num}/{den} speedup {ratio:.2f}x < "
                f"required {float(tier['min_ratio']):.2f}x")
    return failures


def shares(means: dict[str, float]) -> dict[str, float]:
    total = sum(means.values())
    if total <= 0:
        raise SystemExit("error: zero total benchmark time")
    return {name: mean / total for name, mean in means.items()}


def compare(current: dict[str, float], baseline: dict[str, float],
            tolerance: float, *, absolute: bool) -> list[str]:
    """Return failure lines; empty = gate passes."""
    failures = []
    missing = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))
    if missing:
        failures.append(f"benchmarks missing from run: {', '.join(missing)}")
    if added:
        failures.append(
            f"benchmarks not in baseline (rebase with --update): "
            f"{', '.join(added)}")
    if failures:
        return failures
    cur = current if absolute else shares(current)
    base = baseline if absolute else shares(baseline)
    unit = "s" if absolute else " share"
    for name in sorted(base):
        headroom = base[name] * tolerance
        if not absolute:
            # A relative tolerance on a sub-percent share gates timer
            # noise, not code: the dominant benchmark's jitter moves
            # every small share by more than 20% of itself. Drift below
            # an absolute floor is indistinguishable from that noise.
            headroom = max(headroom, SHARE_NOISE_FLOOR)
        if cur[name] > base[name] + headroom:
            failures.append(
                f"{name}: {cur[name]:.6g}{unit} > "
                f"{base[name]:.6g}{unit} +{tolerance:.0%}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark results regress vs the baseline.")
    parser.add_argument("results", type=Path,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed drift (default 0.20 relative; "
                             "0.05 absolute share under --profile)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw mean seconds, not shares of "
                             "total (noisier across machines)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from these results")
    parser.add_argument("--fleet", action="store_true",
                        help="gate the fleet tier's simulated metrics "
                             "JSON (direction-aware) instead of "
                             "pytest-benchmark wall timings")
    parser.add_argument("--profile", action="store_true",
                        help="gate a `modchecker profile --json-out` "
                             "document's stage/op cost shares against "
                             "the attribution baseline (two-sided "
                             "absolute drift, default tolerance 0.05)")
    parser.add_argument("--wallclock", action="store_true",
                        help="gate real speedup ratios between benchmark "
                             "pairs of the same run against the "
                             "baseline's wallclock tiers (machine-speed "
                             "independent)")
    args = parser.parse_args(argv)
    if args.tolerance is not None and args.tolerance < 0:
        parser.error("--tolerance must be >= 0")
    if sum((args.fleet, args.profile, args.wallclock)) > 1:
        parser.error("--fleet, --profile and --wallclock are "
                     "mutually exclusive")
    if args.tolerance is None:
        args.tolerance = 0.05 if args.profile else 0.20

    if args.profile:
        if args.baseline == DEFAULT_BASELINE:
            args.baseline = DEFAULT_PROFILE_BASELINE
        tolerance = args.tolerance
        scenario, current = load_profile(args.results)
        if args.update:
            doc = {"scenarios": {}}
            if args.baseline.exists():
                doc = json.loads(args.baseline.read_text())
            doc.setdefault("scenarios", {})[scenario] = current
            args.baseline.parent.mkdir(parents=True, exist_ok=True)
            args.baseline.write_text(
                json.dumps(doc, indent=2, sort_keys=True) + "\n")
            print(f"profile baseline rebased: {args.baseline} "
                  f"[{scenario}]")
            return 0
        if not args.baseline.exists():
            print(f"error: no profile baseline at {args.baseline}; "
                  f"create one with --update", file=sys.stderr)
            return 2
        doc = json.loads(args.baseline.read_text())
        baseline = doc.get("scenarios", {}).get(scenario)
        if baseline is None:
            print(f"error: baseline has no scenario {scenario!r}; "
                  f"rebase with --update", file=sys.stderr)
            return 2
        failures = compare_profile(current, baseline, tolerance)
        if failures:
            print(f"cost-attribution drift [{scenario}] (tolerance "
                  f"±{tolerance:.2f} absolute share):")
            for line in failures:
                print(f"  {line}")
            return 1 if not any("missing" in f or "not in baseline" in f
                                for f in failures) else 2
        checked = sum(len(current[a]) for a in current)
        print(f"cost attribution stable [{scenario}] ({checked} shares "
              f"checked, tolerance ±{tolerance:.2f})")
        return 0

    if args.fleet:
        if args.baseline == DEFAULT_BASELINE:
            args.baseline = DEFAULT_FLEET_BASELINE
        metrics = load_fleet_metrics(args.results)
        if args.update:
            args.baseline.parent.mkdir(parents=True, exist_ok=True)
            args.baseline.write_text(json.dumps(
                {"metrics": dict(sorted(metrics.items()))},
                indent=2, sort_keys=True) + "\n")
            print(f"fleet baseline rebased: {args.baseline} "
                  f"({len(metrics)} metrics)")
            return 0
        if not args.baseline.exists():
            print(f"error: no fleet baseline at {args.baseline}; "
                  f"create one with --update", file=sys.stderr)
            return 2
        baseline = load_fleet_metrics(args.baseline)
        failures = compare_fleet(metrics, baseline, args.tolerance)
        if failures:
            print(f"fleet metric regression (tolerance "
                  f"{args.tolerance:.0%}):")
            for line in failures:
                print(f"  {line}")
            return 1 if not any("missing" in f or "not in baseline" in f
                                for f in failures) else 2
        print(f"fleet metrics within tolerance ({len(metrics)} checked, "
              f"tolerance {args.tolerance:.0%})")
        return 0

    if args.wallclock:
        means = load_means(args.results)
        if args.update:
            parser.error("--wallclock tiers are hand-written contracts; "
                         "edit the baseline's wallclock section directly")
        if not args.baseline.exists():
            print(f"error: no baseline at {args.baseline}",
                  file=sys.stderr)
            return 2
        tiers = load_wallclock_tiers(args.baseline)
        failures = compare_wallclock(means, tiers)
        if failures:
            print("wall-clock speedup regression:")
            for line in failures:
                print(f"  {line}")
            return 1 if not any("missing" in f for f in failures) else 2
        for tier in tiers:
            ratio = means[tier["numerator"]] / means[tier["denominator"]]
            print(f"{tier['name']}: {ratio:.2f}x "
                  f"(required {float(tier['min_ratio']):.2f}x)")
        print(f"wall-clock tiers hold ({len(tiers)} checked)")
        return 0

    means = load_means(args.results)
    if args.update:
        doc = {"benchmarks": [{"name": n, "stats": {"mean": m}}
                              for n, m in sorted(means.items())]}
        if args.baseline.exists():
            # carry hand-written sections (wallclock tiers) across rebases
            old = json.loads(args.baseline.read_text())
            if "wallclock" in old:
                doc["wallclock"] = old["wallclock"]
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"baseline rebased: {args.baseline} "
              f"({len(means)} benchmarks)")
        return 0

    if not args.baseline.exists():
        print(f"error: no baseline at {args.baseline}; create one with "
              f"--update", file=sys.stderr)
        return 2
    baseline = load_means(args.baseline)
    failures = compare(means, baseline, args.tolerance,
                       absolute=args.absolute)
    mode = "absolute" if args.absolute else "relative"
    if failures:
        print(f"benchmark regression ({mode}, tolerance "
              f"{args.tolerance:.0%}):")
        for line in failures:
            print(f"  {line}")
        return 1 if not any("missing" in f or "not in baseline" in f
                            for f in failures) else 2
    print(f"benchmarks within tolerance ({mode}, {len(means)} checked, "
          f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
