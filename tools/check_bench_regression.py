#!/usr/bin/env python
"""Gate pytest-benchmark results against a checked-in baseline.

Absolute wall-clock on shared CI runners is noisy, so the default
comparison is **relative**: each benchmark's share of the run's total
mean time. A real regression (one path suddenly slower) shifts its
share; a uniformly slow runner shifts nothing. The check is one-sided —
only a share *increase* beyond the tolerance fails; getting faster is
not an error. Pass ``--absolute`` to compare raw mean seconds instead
(useful on a dedicated box).

Usage::

    python tools/check_bench_regression.py results.json            # gate
    python tools/check_bench_regression.py results.json --update   # rebase
    python tools/check_bench_regression.py results.json \
        --baseline benchmarks/baseline_substrate.json --tolerance 0.20

Exit status: 0 = within tolerance, 1 = regression, 2 = usage/schema
error (missing baseline, benchmark set drift).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = (Path(__file__).resolve().parent.parent
                    / "benchmarks" / "baseline_substrate.json")


def load_means(path: Path) -> dict[str, float]:
    """Benchmark name -> mean seconds, from pytest-benchmark JSON."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    benches = data.get("benchmarks")
    if not benches:
        raise SystemExit(f"error: {path} holds no benchmarks")
    return {b["name"]: float(b["stats"]["mean"]) for b in benches}


def shares(means: dict[str, float]) -> dict[str, float]:
    total = sum(means.values())
    if total <= 0:
        raise SystemExit("error: zero total benchmark time")
    return {name: mean / total for name, mean in means.items()}


def compare(current: dict[str, float], baseline: dict[str, float],
            tolerance: float, *, absolute: bool) -> list[str]:
    """Return failure lines; empty = gate passes."""
    failures = []
    missing = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))
    if missing:
        failures.append(f"benchmarks missing from run: {', '.join(missing)}")
    if added:
        failures.append(
            f"benchmarks not in baseline (rebase with --update): "
            f"{', '.join(added)}")
    if failures:
        return failures
    cur = current if absolute else shares(current)
    base = baseline if absolute else shares(baseline)
    unit = "s" if absolute else " share"
    for name in sorted(base):
        allowed = base[name] * (1.0 + tolerance)
        if cur[name] > allowed:
            failures.append(
                f"{name}: {cur[name]:.6g}{unit} > "
                f"{base[name]:.6g}{unit} +{tolerance:.0%}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark results regress vs the baseline.")
    parser.add_argument("results", type=Path,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed one-sided increase (default 0.20)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw mean seconds, not shares of "
                             "total (noisier across machines)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from these results")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    means = load_means(args.results)
    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(
            {"benchmarks": [{"name": n, "stats": {"mean": m}}
                            for n, m in sorted(means.items())]},
            indent=2) + "\n")
        print(f"baseline rebased: {args.baseline} "
              f"({len(means)} benchmarks)")
        return 0

    if not args.baseline.exists():
        print(f"error: no baseline at {args.baseline}; create one with "
              f"--update", file=sys.stderr)
        return 2
    baseline = load_means(args.baseline)
    failures = compare(means, baseline, args.tolerance,
                       absolute=args.absolute)
    mode = "absolute" if args.absolute else "relative"
    if failures:
        print(f"benchmark regression ({mode}, tolerance "
              f"{args.tolerance:.0%}):")
        for line in failures:
            print(f"  {line}")
        return 1 if not any("missing" in f or "not in baseline" in f
                            for f in failures) else 2
    print(f"benchmarks within tolerance ({mode}, {len(means)} checked, "
          f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
