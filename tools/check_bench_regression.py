#!/usr/bin/env python
"""Gate pytest-benchmark results against a checked-in baseline.

Absolute wall-clock on shared CI runners is noisy, so the default
comparison is **relative**: each benchmark's share of the run's total
mean time. A real regression (one path suddenly slower) shifts its
share; a uniformly slow runner shifts nothing. The check is one-sided —
only a share *increase* beyond the tolerance fails; getting faster is
not an error. Pass ``--absolute`` to compare raw mean seconds instead
(useful on a dedicated box).

``--fleet`` switches to the fleet-tier contract instead: the results
file is the ``{"metrics": {...}}`` JSON the 10k-VM tier writes (see
``benchmarks/test_scale.py``), every metric is a *simulated-clock*
scalar (deterministic, so tight tolerances are safe), and the gate is
direction-aware — ``checks_per_sec`` must not *drop*, latency metrics
must not *rise*.

Usage::

    python tools/check_bench_regression.py results.json            # gate
    python tools/check_bench_regression.py results.json --update   # rebase
    python tools/check_bench_regression.py results.json \
        --baseline benchmarks/baseline_substrate.json --tolerance 0.20
    python tools/check_bench_regression.py fleet-metrics.json --fleet

Exit status: 0 = within tolerance, 1 = regression, 2 = usage/schema
error (missing baseline, benchmark set drift).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = (Path(__file__).resolve().parent.parent
                    / "benchmarks" / "baseline_substrate.json")
DEFAULT_FLEET_BASELINE = (Path(__file__).resolve().parent.parent
                          / "benchmarks" / "baseline_fleet.json")

#: Which way each fleet metric is allowed to move. Throughput must not
#: fall below baseline*(1-tolerance); anything else (latencies) must
#: not rise above baseline*(1+tolerance). Unknown metrics default to
#: lower-is-better, the safe direction for a latency-like scalar.
FLEET_HIGHER_IS_BETTER = ("checks_per_sec",)


def load_means(path: Path) -> dict[str, float]:
    """Benchmark name -> mean seconds, from pytest-benchmark JSON."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    benches = data.get("benchmarks")
    if not benches:
        raise SystemExit(f"error: {path} holds no benchmarks")
    return {b["name"]: float(b["stats"]["mean"]) for b in benches}


def load_fleet_metrics(path: Path) -> dict[str, float]:
    """Metric name -> simulated scalar, from the fleet tier's JSON."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    metrics = data.get("metrics")
    if not metrics:
        raise SystemExit(f"error: {path} holds no fleet metrics")
    return {name: float(value) for name, value in metrics.items()}


def compare_fleet(current: dict[str, float], baseline: dict[str, float],
                  tolerance: float) -> list[str]:
    """Direction-aware fleet gate; returns failure lines."""
    failures = []
    missing = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))
    if missing:
        failures.append(f"metrics missing from run: {', '.join(missing)}")
    if added:
        failures.append(
            f"metrics not in baseline (rebase with --update): "
            f"{', '.join(added)}")
    if failures:
        return failures
    for name in sorted(baseline):
        if name in FLEET_HIGHER_IS_BETTER:
            floor = baseline[name] * (1.0 - tolerance)
            if current[name] < floor:
                failures.append(
                    f"{name}: {current[name]:.6g} < "
                    f"{baseline[name]:.6g} -{tolerance:.0%}")
        else:
            ceiling = baseline[name] * (1.0 + tolerance)
            if current[name] > ceiling:
                failures.append(
                    f"{name}: {current[name]:.6g} > "
                    f"{baseline[name]:.6g} +{tolerance:.0%}")
    return failures


def shares(means: dict[str, float]) -> dict[str, float]:
    total = sum(means.values())
    if total <= 0:
        raise SystemExit("error: zero total benchmark time")
    return {name: mean / total for name, mean in means.items()}


def compare(current: dict[str, float], baseline: dict[str, float],
            tolerance: float, *, absolute: bool) -> list[str]:
    """Return failure lines; empty = gate passes."""
    failures = []
    missing = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))
    if missing:
        failures.append(f"benchmarks missing from run: {', '.join(missing)}")
    if added:
        failures.append(
            f"benchmarks not in baseline (rebase with --update): "
            f"{', '.join(added)}")
    if failures:
        return failures
    cur = current if absolute else shares(current)
    base = baseline if absolute else shares(baseline)
    unit = "s" if absolute else " share"
    for name in sorted(base):
        allowed = base[name] * (1.0 + tolerance)
        if cur[name] > allowed:
            failures.append(
                f"{name}: {cur[name]:.6g}{unit} > "
                f"{base[name]:.6g}{unit} +{tolerance:.0%}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark results regress vs the baseline.")
    parser.add_argument("results", type=Path,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed one-sided increase (default 0.20)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw mean seconds, not shares of "
                             "total (noisier across machines)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from these results")
    parser.add_argument("--fleet", action="store_true",
                        help="gate the fleet tier's simulated metrics "
                             "JSON (direction-aware) instead of "
                             "pytest-benchmark wall timings")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    if args.fleet:
        if args.baseline == DEFAULT_BASELINE:
            args.baseline = DEFAULT_FLEET_BASELINE
        metrics = load_fleet_metrics(args.results)
        if args.update:
            args.baseline.parent.mkdir(parents=True, exist_ok=True)
            args.baseline.write_text(json.dumps(
                {"metrics": dict(sorted(metrics.items()))},
                indent=2, sort_keys=True) + "\n")
            print(f"fleet baseline rebased: {args.baseline} "
                  f"({len(metrics)} metrics)")
            return 0
        if not args.baseline.exists():
            print(f"error: no fleet baseline at {args.baseline}; "
                  f"create one with --update", file=sys.stderr)
            return 2
        baseline = load_fleet_metrics(args.baseline)
        failures = compare_fleet(metrics, baseline, args.tolerance)
        if failures:
            print(f"fleet metric regression (tolerance "
                  f"{args.tolerance:.0%}):")
            for line in failures:
                print(f"  {line}")
            return 1 if not any("missing" in f or "not in baseline" in f
                                for f in failures) else 2
        print(f"fleet metrics within tolerance ({len(metrics)} checked, "
              f"tolerance {args.tolerance:.0%})")
        return 0

    means = load_means(args.results)
    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(
            {"benchmarks": [{"name": n, "stats": {"mean": m}}
                            for n, m in sorted(means.items())]},
            indent=2) + "\n")
        print(f"baseline rebased: {args.baseline} "
              f"({len(means)} benchmarks)")
        return 0

    if not args.baseline.exists():
        print(f"error: no baseline at {args.baseline}; create one with "
              f"--update", file=sys.stderr)
        return 2
    baseline = load_means(args.baseline)
    failures = compare(means, baseline, args.tolerance,
                       absolute=args.absolute)
    mode = "absolute" if args.absolute else "relative"
    if failures:
        print(f"benchmark regression ({mode}, tolerance "
              f"{args.tolerance:.0%}):")
        for line in failures:
            print(f"  {line}")
        return 1 if not any("missing" in f or "not in baseline" in f
                            for f in failures) else 2
    print(f"benchmarks within tolerance ({mode}, {len(means)} checked, "
          f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
