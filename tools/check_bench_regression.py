#!/usr/bin/env python
"""Gate pytest-benchmark results against a checked-in baseline.

Absolute wall-clock on shared CI runners is noisy, so the default
comparison is **relative**: each benchmark's share of the run's total
mean time. A real regression (one path suddenly slower) shifts its
share; a uniformly slow runner shifts nothing. The check is one-sided —
only a share *increase* beyond the tolerance fails; getting faster is
not an error. Pass ``--absolute`` to compare raw mean seconds instead
(useful on a dedicated box).

``--fleet`` switches to the fleet-tier contract instead: the results
file is the ``{"metrics": {...}}`` JSON the 10k-VM tier writes (see
``benchmarks/test_scale.py``), every metric is a *simulated-clock*
scalar (deterministic, so tight tolerances are safe), and the gate is
direction-aware — ``checks_per_sec`` must not *drop*, latency metrics
must not *rise*.

``--profile`` gates cost *attribution* instead of cost: the results
file is a ``modchecker profile --json-out`` document, and the check
compares each stage's and each page-op's **share** of the simulated
total against ``benchmarks/baseline_profile.json``. Shares are
dimensionless fractions of a deterministic simulation, so the
comparison is two-sided and uses an *absolute* drift tolerance
(default 0.05): work silently migrating between stages is a regression
even when the total stays flat. The baseline holds one entry per
scenario (``substrate``, ``fleet``), matched via the document's
``scenario`` key.

Usage::

    python tools/check_bench_regression.py results.json            # gate
    python tools/check_bench_regression.py results.json --update   # rebase
    python tools/check_bench_regression.py results.json \
        --baseline benchmarks/baseline_substrate.json --tolerance 0.20
    python tools/check_bench_regression.py fleet-metrics.json --fleet
    python tools/check_bench_regression.py profile.json --profile

Exit status: 0 = within tolerance, 1 = regression, 2 = usage/schema
error (missing baseline, benchmark set drift).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = (Path(__file__).resolve().parent.parent
                    / "benchmarks" / "baseline_substrate.json")
DEFAULT_FLEET_BASELINE = (Path(__file__).resolve().parent.parent
                          / "benchmarks" / "baseline_fleet.json")
DEFAULT_PROFILE_BASELINE = (Path(__file__).resolve().parent.parent
                            / "benchmarks" / "baseline_profile.json")

#: Which way each fleet metric is allowed to move. Throughput must not
#: fall below baseline*(1-tolerance); anything else (latencies) must
#: not rise above baseline*(1+tolerance). Unknown metrics default to
#: lower-is-better, the safe direction for a latency-like scalar.
FLEET_HIGHER_IS_BETTER = ("checks_per_sec",)


def load_means(path: Path) -> dict[str, float]:
    """Benchmark name -> mean seconds, from pytest-benchmark JSON."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    benches = data.get("benchmarks")
    if not benches:
        raise SystemExit(f"error: {path} holds no benchmarks")
    return {b["name"]: float(b["stats"]["mean"]) for b in benches}


def load_fleet_metrics(path: Path) -> dict[str, float]:
    """Metric name -> simulated scalar, from the fleet tier's JSON."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    metrics = data.get("metrics")
    if not metrics:
        raise SystemExit(f"error: {path} holds no fleet metrics")
    return {name: float(value) for name, value in metrics.items()}


def compare_fleet(current: dict[str, float], baseline: dict[str, float],
                  tolerance: float) -> list[str]:
    """Direction-aware fleet gate; returns failure lines."""
    failures = []
    missing = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))
    if missing:
        failures.append(f"metrics missing from run: {', '.join(missing)}")
    if added:
        failures.append(
            f"metrics not in baseline (rebase with --update): "
            f"{', '.join(added)}")
    if failures:
        return failures
    for name in sorted(baseline):
        if name in FLEET_HIGHER_IS_BETTER:
            floor = baseline[name] * (1.0 - tolerance)
            if current[name] < floor:
                failures.append(
                    f"{name}: {current[name]:.6g} < "
                    f"{baseline[name]:.6g} -{tolerance:.0%}")
        else:
            ceiling = baseline[name] * (1.0 + tolerance)
            if current[name] > ceiling:
                failures.append(
                    f"{name}: {current[name]:.6g} > "
                    f"{baseline[name]:.6g} +{tolerance:.0%}")
    return failures


def load_profile(path: Path) -> tuple[str, dict[str, dict[str, float]]]:
    """(scenario, {axis: {name: share}}) from a profiler JSON doc."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if data.get("format") != "modchecker-profile/1":
        raise SystemExit(
            f"error: {path} is not a modchecker profile document")
    scenario = data.get("scenario")
    if not scenario:
        raise SystemExit(f"error: {path} carries no scenario tag")
    return scenario, {
        axis: {name: float(v)
               for name, v in data.get(axis, {}).items()}
        for axis in ("stage_shares", "op_shares")}


def compare_profile(current: dict[str, dict[str, float]],
                    baseline: dict[str, dict[str, float]],
                    tolerance: float) -> list[str]:
    """Two-sided absolute share-drift gate; returns failure lines."""
    failures = []
    for axis in ("stage_shares", "op_shares"):
        cur, base = current.get(axis, {}), baseline.get(axis, {})
        missing = sorted(set(base) - set(cur))
        added = sorted(set(cur) - set(base))
        if missing:
            failures.append(
                f"{axis} missing from run: {', '.join(missing)}")
        if added:
            failures.append(
                f"{axis} not in baseline (rebase with --update): "
                f"{', '.join(added)}")
        if missing or added:
            continue
        for name in sorted(base):
            drift = cur[name] - base[name]
            if abs(drift) > tolerance:
                failures.append(
                    f"{axis}/{name}: share {cur[name]:.4f} vs baseline "
                    f"{base[name]:.4f} (drift {drift:+.4f} > "
                    f"±{tolerance:.2f})")
    return failures


def shares(means: dict[str, float]) -> dict[str, float]:
    total = sum(means.values())
    if total <= 0:
        raise SystemExit("error: zero total benchmark time")
    return {name: mean / total for name, mean in means.items()}


def compare(current: dict[str, float], baseline: dict[str, float],
            tolerance: float, *, absolute: bool) -> list[str]:
    """Return failure lines; empty = gate passes."""
    failures = []
    missing = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))
    if missing:
        failures.append(f"benchmarks missing from run: {', '.join(missing)}")
    if added:
        failures.append(
            f"benchmarks not in baseline (rebase with --update): "
            f"{', '.join(added)}")
    if failures:
        return failures
    cur = current if absolute else shares(current)
    base = baseline if absolute else shares(baseline)
    unit = "s" if absolute else " share"
    for name in sorted(base):
        allowed = base[name] * (1.0 + tolerance)
        if cur[name] > allowed:
            failures.append(
                f"{name}: {cur[name]:.6g}{unit} > "
                f"{base[name]:.6g}{unit} +{tolerance:.0%}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark results regress vs the baseline.")
    parser.add_argument("results", type=Path,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed drift (default 0.20 relative; "
                             "0.05 absolute share under --profile)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw mean seconds, not shares of "
                             "total (noisier across machines)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from these results")
    parser.add_argument("--fleet", action="store_true",
                        help="gate the fleet tier's simulated metrics "
                             "JSON (direction-aware) instead of "
                             "pytest-benchmark wall timings")
    parser.add_argument("--profile", action="store_true",
                        help="gate a `modchecker profile --json-out` "
                             "document's stage/op cost shares against "
                             "the attribution baseline (two-sided "
                             "absolute drift, default tolerance 0.05)")
    args = parser.parse_args(argv)
    if args.tolerance is not None and args.tolerance < 0:
        parser.error("--tolerance must be >= 0")
    if args.fleet and args.profile:
        parser.error("--fleet and --profile are mutually exclusive")
    if args.tolerance is None:
        args.tolerance = 0.05 if args.profile else 0.20

    if args.profile:
        if args.baseline == DEFAULT_BASELINE:
            args.baseline = DEFAULT_PROFILE_BASELINE
        tolerance = args.tolerance
        scenario, current = load_profile(args.results)
        if args.update:
            doc = {"scenarios": {}}
            if args.baseline.exists():
                doc = json.loads(args.baseline.read_text())
            doc.setdefault("scenarios", {})[scenario] = current
            args.baseline.parent.mkdir(parents=True, exist_ok=True)
            args.baseline.write_text(
                json.dumps(doc, indent=2, sort_keys=True) + "\n")
            print(f"profile baseline rebased: {args.baseline} "
                  f"[{scenario}]")
            return 0
        if not args.baseline.exists():
            print(f"error: no profile baseline at {args.baseline}; "
                  f"create one with --update", file=sys.stderr)
            return 2
        doc = json.loads(args.baseline.read_text())
        baseline = doc.get("scenarios", {}).get(scenario)
        if baseline is None:
            print(f"error: baseline has no scenario {scenario!r}; "
                  f"rebase with --update", file=sys.stderr)
            return 2
        failures = compare_profile(current, baseline, tolerance)
        if failures:
            print(f"cost-attribution drift [{scenario}] (tolerance "
                  f"±{tolerance:.2f} absolute share):")
            for line in failures:
                print(f"  {line}")
            return 1 if not any("missing" in f or "not in baseline" in f
                                for f in failures) else 2
        checked = sum(len(current[a]) for a in current)
        print(f"cost attribution stable [{scenario}] ({checked} shares "
              f"checked, tolerance ±{tolerance:.2f})")
        return 0

    if args.fleet:
        if args.baseline == DEFAULT_BASELINE:
            args.baseline = DEFAULT_FLEET_BASELINE
        metrics = load_fleet_metrics(args.results)
        if args.update:
            args.baseline.parent.mkdir(parents=True, exist_ok=True)
            args.baseline.write_text(json.dumps(
                {"metrics": dict(sorted(metrics.items()))},
                indent=2, sort_keys=True) + "\n")
            print(f"fleet baseline rebased: {args.baseline} "
                  f"({len(metrics)} metrics)")
            return 0
        if not args.baseline.exists():
            print(f"error: no fleet baseline at {args.baseline}; "
                  f"create one with --update", file=sys.stderr)
            return 2
        baseline = load_fleet_metrics(args.baseline)
        failures = compare_fleet(metrics, baseline, args.tolerance)
        if failures:
            print(f"fleet metric regression (tolerance "
                  f"{args.tolerance:.0%}):")
            for line in failures:
                print(f"  {line}")
            return 1 if not any("missing" in f or "not in baseline" in f
                                for f in failures) else 2
        print(f"fleet metrics within tolerance ({len(metrics)} checked, "
              f"tolerance {args.tolerance:.0%})")
        return 0

    means = load_means(args.results)
    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(
            {"benchmarks": [{"name": n, "stats": {"mean": m}}
                            for n, m in sorted(means.items())]},
            indent=2) + "\n")
        print(f"baseline rebased: {args.baseline} "
              f"({len(means)} benchmarks)")
        return 0

    if not args.baseline.exists():
        print(f"error: no baseline at {args.baseline}; create one with "
              f"--update", file=sys.stderr)
        return 2
    baseline = load_means(args.baseline)
    failures = compare(means, baseline, args.tolerance,
                       absolute=args.absolute)
    mode = "absolute" if args.absolute else "relative"
    if failures:
        print(f"benchmark regression ({mode}, tolerance "
              f"{args.tolerance:.0%}):")
        for line in failures:
            print(f"  {line}")
        return 1 if not any("missing" in f or "not in baseline" in f
                            for f in failures) else 2
    print(f"benchmarks within tolerance ({mode}, {len(means)} checked, "
          f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
