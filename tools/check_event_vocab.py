#!/usr/bin/env python
"""Lint the audit-event vocabulary.

The event log's vocabulary is *closed*: every ``emit(...)`` site in the
source tree and every record in an emitted JSONL audit log must use a
name from ``repro.obs.events.EVENT_NAMES``. ``EventLog.emit`` enforces
this at runtime; this linter enforces it statically (so a typo'd name
fails CI even on a code path no test exercises) and on captured logs
(so an archived artifact can be trusted without re-running anything).

Usage::

    python tools/check_event_vocab.py                 # lint src/ sites
    python tools/check_event_vocab.py log.jsonl ...   # also lint logs

Exit status 0 iff every emit site and every log record is in
vocabulary, the source mentions every vocabulary name somewhere
(a dead name means the vocabulary table in the docs is overstating
what the pipeline can produce), and the vocabulary table in
``repro.obs.events``'s module docstring documents every name (so a
new family — e.g. the ``trap.*`` events — cannot land undocumented).
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.events import EVENT_NAMES  # noqa: E402

# emit("name", ...) / emit('name', ...) with a literal first argument.
EMIT_RE = re.compile(r"""\.emit\(\s*(['"])([^'"]+)\1""")


def lint_sources(src: Path) -> tuple[list[str], set[str]]:
    """Return (violations, names actually emitted) for a source tree."""
    problems: list[str] = []
    used: set[str] = set()
    for path in sorted(src.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for match in EMIT_RE.finditer(line):
                name = match.group(2)
                used.add(name)
                if name not in EVENT_NAMES:
                    shown = path.relative_to(ROOT) \
                        if path.is_relative_to(ROOT) else path
                    problems.append(
                        f"{shown}:{lineno}: "
                        f"emit of out-of-vocabulary event {name!r}")
    return problems, used


def lint_docstring_table() -> list[str]:
    """Every vocabulary name must appear in the events-module docstring.

    The table there is the reference downstream docs link to; a name
    in ``EVENT_NAMES`` but not in the table is a silent doc gap.
    """
    import repro.obs.events as events_mod
    doc = events_mod.__doc__ or ""
    return [f"vocabulary name {name!r} missing from the "
            f"repro.obs.events docstring table"
            for name in EVENT_NAMES if f"``{name}``" not in doc]


def lint_jsonl(path: Path) -> list[str]:
    """Validate every record of a JSONL audit log."""
    problems: list[str] = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{path}:{lineno}: not JSON ({exc.msg})")
            continue
        name = doc.get("event")
        if name not in EVENT_NAMES:
            problems.append(
                f"{path}:{lineno}: out-of-vocabulary event {name!r}")
        for key in ("t", "seq"):
            if key not in doc:
                problems.append(f"{path}:{lineno}: missing {key!r}")
    return problems


def main(argv: list[str]) -> int:
    problems, used = lint_sources(ROOT / "src")
    for dead in sorted(set(EVENT_NAMES) - used):
        problems.append(f"vocabulary name {dead!r} is never emitted "
                        f"anywhere under src/")
    problems.extend(lint_docstring_table())
    logs = 0
    for arg in argv:
        path = Path(arg)
        if not path.exists():
            problems.append(f"{path}: no such audit log")
            continue
        logs += 1
        problems.extend(lint_jsonl(path))
    for problem in problems:
        print(problem)
    if not problems:
        print(f"event vocabulary OK: {len(used)} emit site name(s), "
              f"{len(EVENT_NAMES)} vocabulary name(s), "
              f"{logs} log(s) checked")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
