#!/usr/bin/env python
"""Lint the closed observability vocabularies.

Three vocabularies are *closed*: audit-event names
(``repro.obs.events.EVENT_NAMES``, used by ``emit(...)``), span names
(``repro.obs.trace.SPAN_NAMES``, used by ``span(...)``) and page-op
names (``repro.obs.trace.OP_NAMES``, used by ``charge(...)``). The
runtime enforces each at its call layer; this linter enforces them
statically (so a typo'd name fails CI even on a code path no test
exercises) and on captured JSONL logs (so an archived artifact can be
trusted without re-running anything).

Usage::

    python tools/check_event_vocab.py                 # lint src/ sites
    python tools/check_event_vocab.py log.jsonl ...   # also lint logs

Exit status 0 iff every literal ``emit``/``span``/``charge`` site and
every log record is in vocabulary, the source uses every vocabulary
name somewhere (a dead name means the docs overstate what the pipeline
can produce), and the vocabulary tables in the ``repro.obs.events`` /
``repro.obs.trace`` module docstrings document every name (so a new
family — e.g. the ``slo.*`` events — cannot land undocumented).
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.events import EVENT_NAMES  # noqa: E402
from repro.obs.trace import OP_NAMES, SPAN_NAMES  # noqa: E402

#: (call, vocabulary, what) triples; each matches ``.call("name"`` /
#: ``.call('name'`` with a literal first argument, across line breaks.
VOCABULARIES = (
    ("emit", frozenset(EVENT_NAMES), "event"),
    ("span", frozenset(SPAN_NAMES), "span"),
    ("charge", frozenset(OP_NAMES), "page-op"),
)


def _site_re(call: str) -> re.Pattern:
    return re.compile(r"\." + call + r"""\(\s*(['"])([^'"]+)\1""")


def lint_sources(src: Path) -> tuple[list[str], dict[str, set[str]]]:
    """Return (violations, {call: names actually used}) for a tree."""
    problems: list[str] = []
    used: dict[str, set[str]] = {call: set() for call, _, _ in
                                 VOCABULARIES}
    for path in sorted(src.rglob("*.py")):
        text = path.read_text()
        shown = path.relative_to(ROOT) \
            if path.is_relative_to(ROOT) else path
        for call, vocabulary, what in VOCABULARIES:
            for match in _site_re(call).finditer(text):
                name = match.group(2)
                used[call].add(name)
                if name not in vocabulary:
                    lineno = text.count("\n", 0, match.start()) + 1
                    problems.append(
                        f"{shown}:{lineno}: "
                        f"{call} of out-of-vocabulary {what} {name!r}")
    return problems, used


def lint_docstring_tables() -> list[str]:
    """Every vocabulary name must appear in its module's docstring.

    The tables there are the reference downstream docs link to; a name
    in a vocabulary but not in its table is a silent doc gap.
    """
    import repro.obs.events as events_mod
    import repro.obs.trace as trace_mod
    problems = []
    for names, mod, label in (
            (EVENT_NAMES, events_mod, "repro.obs.events"),
            (SPAN_NAMES, trace_mod, "repro.obs.trace"),
            (OP_NAMES, trace_mod, "repro.obs.trace")):
        doc = mod.__doc__ or ""
        # OP_NAMES documents itself on the tuple, not the module doc
        if names is OP_NAMES:
            import inspect
            doc += inspect.getsource(trace_mod)
        problems.extend(
            f"vocabulary name {name!r} missing from the "
            f"{label} docstring table"
            for name in names if f"``{name}``" not in doc)
    return problems


def lint_jsonl(path: Path) -> list[str]:
    """Validate every record of a JSONL audit log."""
    problems: list[str] = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{path}:{lineno}: not JSON ({exc.msg})")
            continue
        name = doc.get("event")
        if name not in EVENT_NAMES:
            problems.append(
                f"{path}:{lineno}: out-of-vocabulary event {name!r}")
        for key in ("t", "seq"):
            if key not in doc:
                problems.append(f"{path}:{lineno}: missing {key!r}")
    return problems


def main(argv: list[str]) -> int:
    problems, used = lint_sources(ROOT / "src")
    for call, vocabulary, what in VOCABULARIES:
        for dead in sorted(vocabulary - used[call]):
            problems.append(
                f"{what} vocabulary name {dead!r} has no literal "
                f"{call} site anywhere under src/")
    problems.extend(lint_docstring_tables())
    logs = 0
    for arg in argv:
        path = Path(arg)
        if not path.exists():
            problems.append(f"{path}: no such audit log")
            continue
        logs += 1
        problems.extend(lint_jsonl(path))
    for problem in problems:
        print(problem)
    if not problems:
        sites = ", ".join(
            f"{len(used[call])} {call}" for call, _, _ in VOCABULARIES)
        total = sum(len(v) for _, v, _ in VOCABULARIES)
        print(f"vocabularies OK: {sites} site name(s), "
              f"{total} vocabulary name(s), {logs} log(s) checked")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
